(* Log records.

   A record occupies exactly one 64-byte cacheline (eight words), so that
   creating one "off-line" — cached stores followed by a single write-back —
   costs one NVM write before it is atomically linked into the log.  The
   fields mirror ARIES/REWIND: LSN, transaction id, record type, affected
   address, before/after images, the undo-next pointer used by CLRs, and
   the previous-record-of-same-transaction chain used by two-layer logging.

   Records are manipulated by NVM address (an [int] arena offset). *)

open Rewind_nvm

type typ =
  | Update
  | Clr
  | End
  | Checkpoint
  | Delete
  | Rollback

let int_of_typ = function
  | Update -> 1
  | Clr -> 2
  | End -> 3
  | Checkpoint -> 4
  | Delete -> 5
  | Rollback -> 6

let typ_of_int = function
  | 1 -> Update
  | 2 -> Clr
  | 3 -> End
  | 4 -> Checkpoint
  | 5 -> Delete
  | 6 -> Rollback
  | n -> Fmt.invalid_arg "Record.typ_of_int: %d" n

let pp_typ ppf t =
  Fmt.string ppf
    (match t with
    | Update -> "UPDATE"
    | Clr -> "CLR"
    | End -> "END"
    | Checkpoint -> "CHECKPOINT"
    | Delete -> "DELETE"
    | Rollback -> "ROLLBACK")

let size_bytes = 64

(* Word offsets within a record. *)
let o_lsn = 0
let o_txn = 8
let o_typ = 16
let o_addr = 24
let o_old = 32
let o_new = 40
let o_undo_next = 48
let o_prev_same_txn = 56

let lsn a r = Int64.to_int (Arena.read a (r + o_lsn))
let txn a r = Int64.to_int (Arena.read a (r + o_txn))
let typ a r = typ_of_int (Int64.to_int (Arena.read a (r + o_typ)))
let addr a r = Int64.to_int (Arena.read a (r + o_addr))
let old_value a r = Arena.read a (r + o_old)
let new_value a r = Arena.read a (r + o_new)
let undo_next a r = Int64.to_int (Arena.read a (r + o_undo_next))
let prev_same_txn a r = Int64.to_int (Arena.read a (r + o_prev_same_txn))

(* Create a record with cached stores and one write-back.  No fence is
   issued here: the caller decides when the record must be ordered before
   subsequent writes (immediately for Simple/Optimized logging; at the
   group boundary for Batch logging). *)
let make alloc ~lsn:l ~txn:x ~typ:t ~addr:ad ~old_value:ov ~new_value:nv
    ~undo_next:un ~prev_same_txn:pv =
  let a = Alloc.arena alloc in
  let r = Alloc.alloc ~align:size_bytes alloc size_bytes in
  Arena.write a (r + o_lsn) (Int64.of_int l);
  Arena.write a (r + o_txn) (Int64.of_int x);
  Arena.write a (r + o_typ) (Int64.of_int (int_of_typ t));
  Arena.write a (r + o_addr) (Int64.of_int ad);
  Arena.write a (r + o_old) ov;
  Arena.write a (r + o_new) nv;
  Arena.write a (r + o_undo_next) (Int64.of_int un);
  Arena.write a (r + o_prev_same_txn) (Int64.of_int pv);
  Arena.flush_line a r;
  r

(* Durable update of the same-transaction back-chain; only legal while the
   record is not yet reachable from the log or an index chain. *)
let set_prev_same_txn a r v =
  Arena.nt_write a (r + o_prev_same_txn) (Int64.of_int v)

let free alloc r = Alloc.free ~align:size_bytes alloc r size_bytes

let pp arena ppf r =
  Fmt.pf ppf "@[<h>#%d %a txn=%d addr=%d old=%Ld new=%Ld undo_next=%d@]"
    (lsn arena r) pp_typ (typ arena r) (txn arena r) (addr arena r)
    (old_value arena r) (new_value arena r) (undo_next arena r)
