lib/core/rewind.ml: Adll Autotune Avl_index Log Record Tm Tm_group Txn_table
