lib/core/tm_group.ml: Array Tm
