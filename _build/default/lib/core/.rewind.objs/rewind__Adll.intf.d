lib/core/adll.mli: Rewind_nvm
