lib/core/txn_table.mli: Fmt
