lib/core/log.ml: Adll Alloc Arena Clock Config Fmt Hashtbl Int64 List Record Rewind_nvm
