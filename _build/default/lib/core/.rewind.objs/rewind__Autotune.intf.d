lib/core/autotune.mli: Fmt Tm
