lib/core/avl_index.mli: Log Rewind_nvm
