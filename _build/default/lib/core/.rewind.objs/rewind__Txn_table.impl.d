lib/core/txn_table.ml: Fmt Hashtbl
