lib/core/adll.ml: Alloc Arena Int64 List Rewind_nvm
