lib/core/tm.mli: Fmt Log Rewind_nvm
