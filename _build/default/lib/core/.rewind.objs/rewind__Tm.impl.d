lib/core/tm.ml: Alloc Arena Atomic Avl_index Fmt Hashtbl Int64 List Log Record Rewind_nvm Sim_mutex Txn_table
