lib/core/record.mli: Fmt Rewind_nvm
