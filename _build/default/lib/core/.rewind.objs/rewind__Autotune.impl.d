lib/core/autotune.ml: Fmt Hashtbl Option Tm
