lib/core/avl_index.ml: Alloc Arena Clock Config Int64 List Log Record Rewind_nvm
