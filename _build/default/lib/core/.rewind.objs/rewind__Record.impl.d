lib/core/record.ml: Alloc Arena Fmt Int64 Rewind_nvm
