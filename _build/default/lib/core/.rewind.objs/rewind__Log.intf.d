lib/core/log.mli: Fmt Rewind_nvm
