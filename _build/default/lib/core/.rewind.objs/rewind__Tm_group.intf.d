lib/core/tm_group.mli: Rewind_nvm Tm
