(** The Atomic AVL Tree (AAVLT, Section 3.4): the two-layer
    configuration's top layer, indexing log records by LSN.

    Every write to reachable tree state is WAL-logged into the underlying
    bucket log ({!Log.t}, the bottom layer) before being applied with a
    non-temporal store; an operation's records are cleared (END last)
    once it completes.  Only one operation is ever pending, so {!recover}
    is a one-transaction scheme: physical undo of the interrupted
    operation, idempotent under repeated crashes. *)

type t

val create : Rewind_nvm.Alloc.t -> ilog:Log.t -> t
val attach : Rewind_nvm.Alloc.t -> ilog:Log.t -> root_ptr:int -> t

val root_ptr : t -> int
(** NVM word holding the tree root; persist it to reattach after a crash. *)

val recover : t -> unit
(** Undo (or finish clearing) the at-most-one interrupted operation. *)

(** {1 Atomic operations} *)

val op : t -> (unit -> 'a) -> 'a
(** Run the callback as one crash-atomic tree operation: its logged writes
    are followed by an internal END record and cleared in O(1) via
    handles; deferred node frees happen after clearing. *)

val insert : t -> int -> int
(** [insert t key] finds or creates the node for [key] as one atomic
    operation; returns the node address. *)

val insert_in_op : t -> int -> int
(** Like {!insert} but to be called inside an enclosing {!op}, so that the
    insertion and payload updates commit together. *)

val remove : t -> int -> bool
val remove_in_op : t -> int -> bool

val clear : t -> unit
(** Wholesale clearing: one logged root swing empties the tree durably;
    node memory returns to the allocator. *)

(** {1 Reads} *)

val find : t -> int -> int
(** Node address for a key, or 0. *)

val mem : t -> int -> bool
val key : t -> int -> int
val size : t -> int
val keys : t -> int list

val iter : t -> (int -> unit) -> unit
(** In-order traversal — for LSN keys, ascending log order. *)

(** {1 Node payload}

    One word of payload ([head_record]) plus two auxiliary words; payload
    writes are logged and must run inside an {!op}. *)

val head_record : t -> int -> int
val set_head_record : t -> int -> int -> unit
val status : t -> int -> int
val set_status : t -> int -> int -> unit
val undo_next : t -> int -> int
val set_undo_next : t -> int -> int -> unit

val well_formed : t -> bool
(** AVL + BST invariant check, for tests. *)
