(** Deterministic pseudo-random generator (splitmix64) for TPC-C data and
    workload generation — reproducible across runs, as the simulated-time
    methodology requires. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
val nurand : t -> int -> int -> int -> int
(** The TPC-C NURand non-uniform distribution. *)
