lib/tpcc/rng.ml: Int64
