lib/tpcc/rng.mli:
