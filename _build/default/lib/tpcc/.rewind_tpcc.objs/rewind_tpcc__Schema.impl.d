lib/tpcc/schema.ml: Alloc Arena Array Btree Int64 Rewind Rewind_nvm Rewind_pds
