lib/tpcc/neworder.ml: Array Btree Int64 List Rewind Rewind_nvm Rewind_pds Rng Schema
