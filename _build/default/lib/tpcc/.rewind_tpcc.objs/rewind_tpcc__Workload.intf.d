lib/tpcc/workload.mli: Datagen Fmt Rewind Schema
