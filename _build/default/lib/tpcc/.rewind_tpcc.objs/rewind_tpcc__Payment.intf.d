lib/tpcc/payment.mli: Rewind Rng Schema
