lib/tpcc/neworder.mli: Rewind Rng Schema
