lib/tpcc/workload.ml: Alloc Arena Array Datagen Fmt Int64 Neworder Rewind Rewind_nvm Rewind_pds Rng Schema Sim_mutex Sim_threads
