lib/tpcc/payment.ml: Array Btree Int64 Option Rewind Rewind_nvm Rewind_pds Rng Schema
