lib/tpcc/datagen.ml: Array Btree Int64 Rewind_pds Rng Schema
