(* Deterministic pseudo-random generator for TPC-C data and workload
   generation (splitmix64): reproducible across runs and domains, which the
   simulated-time methodology requires. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [lo, hi] inclusive. *)
let int t lo hi =
  if hi < lo then invalid_arg "Rng.int";
  let span = hi - lo + 1 in
  lo + Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int span))

let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

(* TPC-C NURand non-uniform distribution. *)
let nurand t a x y =
  let c = 7 in
  (((int t 0 a lor int t x y) + c) mod (y - x + 1)) + x
