(* TPC-C initial population, scale factor 1 (scaled item/customer counts
   are configurable so tests and quick benches stay fast).  Loading writes
   rows with raw durable stores and inserts tree entries through a
   throwaway transaction of the provided loader mode — the benchmark then
   reattaches the trees in the measured persistence mode. *)

open Rewind_pds

type params = {
  items : int;          (* TPC-C: 100_000 *)
  customers_per_district : int;  (* TPC-C: 3_000 *)
  initial_orders : int;  (* pre-existing orders per district *)
}

let default = { items = 100_000; customers_per_district = 3_000; initial_orders = 0 }
let small = { items = 2_000; customers_per_district = 100; initial_orders = 0 }

(* Populate [db]; the trees must be in a raw mode (Dram / Direct_nvm) or a
   logged mode whose transaction [txn] is provided by the caller. *)
let load ?(params = default) db txn =
  let rng = Rng.create 42 in
  (* warehouse + districts *)
  for d = 1 to Schema.districts do
    let row = Schema.new_row db Schema.district_words in
    db.Schema.districts_rows.(d) <- row;
    Schema.row_set_raw db row Schema.d_tax (Int64.of_int (Rng.int rng 0 2000));
    Schema.row_set_raw db row Schema.d_ytd 0L;
    Schema.row_set_raw db row Schema.d_next_o_id
      (Int64.of_int (params.initial_orders + 1));
    Schema.row_set_raw db row Schema.d_next_h_id 1L
  done;
  (* customers *)
  for d = 1 to Schema.districts do
    for c = 1 to params.customers_per_district do
      let row = Schema.new_row db Schema.customer_words in
      Schema.row_set_raw db row Schema.c_discount
        (Int64.of_int (Rng.int rng 0 5000));
      Schema.row_set_raw db row Schema.c_balance 0L;
      Btree.insert db.Schema.customer txn (Schema.key_customer d c)
        (Int64.of_int row)
    done
  done;
  (* items and stock *)
  for i = 1 to params.items do
    let irow = Schema.new_row db Schema.item_words in
    Schema.row_set_raw db irow Schema.i_price
      (Int64.of_int (Rng.int rng 100 10000));
    Btree.insert db.Schema.item txn (Schema.key_item i) (Int64.of_int irow);
    let srow = Schema.new_row db Schema.stock_words in
    Schema.row_set_raw db srow Schema.s_quantity
      (Int64.of_int (Rng.int rng 10 100));
    Btree.insert db.Schema.stock txn (Schema.key_stock i) (Int64.of_int srow)
  done
