(* TPC-C schema subset for the new-order transaction (Section 5.3).

   Tables are B+-trees over NVM; rows are fixed-width NVM regions of word
   fields referenced by the tree's value word.  Two physical layouts are
   supported, reflecting the paper's co-design experiment:

   - [Naive]: one tree per table; the order-side tables (orders,
     order-line, new-order) use compound keys (d_id, o_id [, ol_number])
     packed into one 64-bit key;
   - [Optimized]: the order-side tables become an array of ten trees — one
     per district — keyed by o_id alone, exploiting the tiny district
     domain exactly as the paper's optimised data structure does.

   Scale factor 1: one warehouse, ten districts. *)

open Rewind_nvm
open Rewind_pds

let districts = 10

type layout = Naive | Optimized

(* -- row field offsets (words) -- *)

(* district row: d_tax, d_ytd, d_next_o_id, d_next_h_id *)
let district_words = 4
let d_tax = 0
let d_ytd = 1
let d_next_o_id = 2
let d_next_h_id = 3

(* customer row: c_discount, c_balance, c_ytd_payment, c_payment_cnt *)
let customer_words = 4
let c_discount = 0
let c_balance = 1
let c_ytd_payment = 2
let c_payment_cnt = 3

(* item row: i_price *)
let item_words = 1
let i_price = 0

(* stock row: s_quantity, s_ytd, s_order_cnt, s_remote_cnt *)
let stock_words = 4
let s_quantity = 0
let s_ytd = 1
let s_order_cnt = 2
let s_remote_cnt = 3

(* orders row: o_c_id, o_entry_d, o_ol_cnt *)
let order_words = 3
let o_c_id = 0
let o_entry_d = 1
let o_ol_cnt = 2

(* order-line row: ol_i_id, ol_supply_w_id, ol_quantity, ol_amount *)
let order_line_words = 4
let ol_i_id = 0
let ol_supply_w_id = 1
let ol_quantity = 2
let ol_amount = 3

(* history row: h_c_id, h_d_id, h_amount *)
let history_words = 3
let h_c_id = 0
let h_d_id = 1
let h_amount = 2

(* -- key encodings -- *)

let key_district d = Int64.of_int d
let key_customer d c = Int64.of_int ((d * 100000) + c)
let key_item i = Int64.of_int i
let key_stock i = Int64.of_int i

(* compound order keys for the naive layout *)
let key_order_naive d o = Int64.of_int ((d * 100_000_000) + o)
let key_history d h = Int64.of_int ((d * 100_000_000) + h)
let key_order_line_naive d o ol = Int64.of_int ((((d * 100_000_000) + o) * 16) + ol)

(* per-district keys for the optimised layout *)
let key_order_opt o = Int64.of_int o
let key_order_line_opt o ol = Int64.of_int ((o * 16) + ol)

(* -- database -- *)

type db = {
  layout : layout;
  arena : Arena.t;
  alloc : Alloc.t;
  mode : Btree.mode;
  warehouse_tax : int;  (* fixed-point (x10000) *)
  districts_rows : int array;  (* district row addresses, index 1..10 *)
  customer : Btree.t;
  item : Btree.t;
  stock : Btree.t;
  orders : Btree.t array;      (* length 1 (naive) or [districts] (optimized) *)
  order_line : Btree.t array;
  new_order : Btree.t array;
  history : Btree.t;           (* payment history, append-only *)
}

(* Allocate a row and initialise its fields with raw durable stores (rows
   are reachable only after the loader or a logged tree insert links them). *)
let new_row db words =
  let r = Alloc.alloc ~align:64 db.alloc (8 * words) in
  for w = 0 to words - 1 do
    Arena.nt_write db.arena (r + (8 * w)) 0L
  done;
  r

let row_get db row field = Arena.read db.arena (row + (8 * field))

(* Logged (transactional) row update. *)
let row_set (_ : db) tm txn row field v =
  Rewind.Tm.write tm txn ~addr:(row + (8 * field)) ~value:v

(* Raw durable row update, for the non-recoverable NVM configuration. *)
let row_set_raw db row field v = Arena.nt_write db.arena (row + (8 * field)) v

let order_trees_count = function Naive -> 1 | Optimized -> districts

let order_tree db d =
  match db.layout with
  | Naive -> db.orders.(0)
  | Optimized -> db.orders.(d - 1)

let order_line_tree db d =
  match db.layout with
  | Naive -> db.order_line.(0)
  | Optimized -> db.order_line.(d - 1)

let new_order_tree db d =
  match db.layout with
  | Naive -> db.new_order.(0)
  | Optimized -> db.new_order.(d - 1)

let key_order db d o =
  match db.layout with Naive -> key_order_naive d o | Optimized -> key_order_opt o

let key_order_line db d o ol =
  match db.layout with
  | Naive -> key_order_line_naive d o ol
  | Optimized -> key_order_line_opt o ol

let create ?(layout = Naive) mode alloc =
  let arena = Alloc.arena alloc in
  let n = order_trees_count layout in
  {
    layout;
    arena;
    alloc;
    mode;
    warehouse_tax = 1000;
    districts_rows = Array.make (districts + 1) 0;
    customer = Btree.create mode alloc;
    item = Btree.create mode alloc;
    stock = Btree.create mode alloc;
    orders = Array.init n (fun _ -> Btree.create mode alloc);
    order_line = Array.init n (fun _ -> Btree.create mode alloc);
    new_order = Array.init n (fun _ -> Btree.create mode alloc);
    history = Btree.create mode alloc;
  }
