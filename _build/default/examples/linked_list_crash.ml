(* The paper's running example (Listings 1 and 2): a persistent
   doubly-linked list with recoverable removal, plus crash-point
   exhaustion: the removal is attempted with a simulated power failure at
   *every* persistence event, and after each crash recovery must leave the
   list in exactly the before- or after-state.

     dune exec examples/linked_list_crash.exe                              *)

open Rewind_nvm
open Rewind
open Rewind_pds

let build () =
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg:Rewind.config_1l_nfp alloc ~root_slot:2 in
  let l = Plist.create tm alloc in
  Tm.atomically tm (fun txn ->
      List.iter (fun v -> ignore (Plist.push_back l txn v)) [ 1L; 2L; 3L; 4L ]);
  (arena, alloc, tm, l)

let pp_list l =
  Fmt.str "[%s]" (String.concat "; " (List.map Int64.to_string (Plist.to_list l)))

let () =
  (* A crash-free removal first: Listing 1 inside a persistent atomic block. *)
  let _, _, tm, l = build () in
  Fmt.pr "initial list:  %s@." (pp_list l);
  Tm.atomically tm (fun txn -> Plist.remove l txn (Plist.find l 2L));
  Fmt.pr "after remove:  %s@." (pp_list l);

  (* Crash exhaustion over the removal. *)
  Fmt.pr "@.removing 2 with a crash armed at every persistence point:@.";
  let k = ref 0 in
  let completed = ref false in
  let outcomes = Hashtbl.create 4 in
  while not !completed do
    let arena, _, tm, l = build () in
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.atomically tm (fun txn -> Plist.remove l txn (Plist.find l 2L));
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc = Alloc.recover arena in
      let tm2 = Tm.attach ~cfg:Rewind.config_1l_nfp alloc ~root_slot:2 in
      let l2 =
        Plist.attach tm2 alloc ~head_cell:(Plist.head_cell l)
          ~tail_cell:(Plist.tail_cell l)
      in
      let s = pp_list l2 in
      assert (Plist.well_formed l2);
      assert (s = "[1; 2; 3; 4]" || s = "[1; 3; 4]");
      Hashtbl.replace outcomes s
        (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes s))
    end;
    incr k
  done;
  Fmt.pr "  %d crash points exercised@." !k;
  Hashtbl.iter
    (fun s n -> Fmt.pr "  recovered to %-14s at %2d crash points@." s n)
    outcomes;
  Fmt.pr "every crash point recovered to a consistent list.@."
