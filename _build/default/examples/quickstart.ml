(* Quickstart: transactional updates to plain NVM words.

   Creates a simulated NVM arena, runs a committed and an aborted
   transaction against two "bank account" cells, crashes the machine
   mid-transaction, and shows that recovery restores exactly the committed
   state.

     dune exec examples/quickstart.exe                                     *)

open Rewind_nvm
open Rewind

let () =
  (* A 64 MiB simulated NVM arena and a persistent heap on top of it. *)
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in

  (* The transaction manager: one-layer logging, no-force policy, the
     Optimized (bucketed) log — the paper's recommended configuration. *)
  let tm = Tm.create ~cfg:Rewind.config_1l_nfp alloc ~root_slot:2 in

  (* Two persistent words: account balances. *)
  let alice = Alloc.alloc alloc 8 and bob = Alloc.alloc alloc 8 in

  (* Initial funding, transactionally. *)
  Tm.atomically tm (fun txn ->
      Tm.write tm txn ~addr:alice ~value:100L;
      Tm.write tm txn ~addr:bob ~value:50L);
  Fmt.pr "after funding:     alice=%Ld bob=%Ld@." (Arena.read arena alice)
    (Arena.read arena bob);

  (* A transfer that commits. *)
  Tm.atomically tm (fun txn ->
      let a = Arena.read arena alice and b = Arena.read arena bob in
      Tm.write tm txn ~addr:alice ~value:(Int64.sub a 30L);
      Tm.write tm txn ~addr:bob ~value:(Int64.add b 30L));
  Fmt.pr "after transfer:    alice=%Ld bob=%Ld@." (Arena.read arena alice)
    (Arena.read arena bob);

  (* A transfer that aborts: the exception rolls the transaction back. *)
  (try
     Tm.atomically tm (fun txn ->
         Tm.write tm txn ~addr:alice ~value:0L;
         Tm.write tm txn ~addr:bob ~value:999L;
         failwith "insufficient funds")
   with Failure _ -> ());
  Fmt.pr "after failed xfer: alice=%Ld bob=%Ld@." (Arena.read arena alice)
    (Arena.read arena bob);

  (* A transfer interrupted by a power failure... *)
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:alice ~value:0L;
  Fmt.pr "mid-transaction:   alice=%Ld bob=%Ld  <- about to crash@."
    (Arena.read arena alice) (Arena.read arena bob);
  Arena.crash arena;

  (* ...and recovery: reattach with the same configuration and root slot. *)
  let alloc = Alloc.recover arena in
  let _tm = Tm.attach ~cfg:Rewind.config_1l_nfp alloc ~root_slot:2 in
  Fmt.pr "after recovery:    alice=%Ld bob=%Ld@." (Arena.read arena alice)
    (Arena.read arena bob);
  assert (Arena.read arena alice = 70L && Arena.read arena bob = 80L);
  Fmt.pr "committed state restored; uncommitted transaction rolled back.@."
