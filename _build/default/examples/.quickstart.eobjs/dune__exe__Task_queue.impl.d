examples/task_queue.ml: Alloc Arena Array Autotune Fmt Int64 Pqueue Ptable Rewind Rewind_nvm Rewind_pds Tm_group
