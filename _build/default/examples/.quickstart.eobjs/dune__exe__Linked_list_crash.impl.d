examples/linked_list_crash.ml: Alloc Arena Fmt Hashtbl Int64 List Option Plist Rewind Rewind_nvm Rewind_pds String Tm
