examples/tpcc_demo.ml: Alloc Arena Array Datagen Fmt List Neworder Rewind Rewind_nvm Rewind_pds Rewind_tpcc Rng Schema Workload
