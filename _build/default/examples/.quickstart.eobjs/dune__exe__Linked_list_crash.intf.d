examples/linked_list_crash.mli:
