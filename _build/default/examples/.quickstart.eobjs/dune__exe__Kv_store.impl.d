examples/kv_store.ml: Alloc Arena Btree Fmt Int64 Option Rewind Rewind_nvm Rewind_pds Tm
