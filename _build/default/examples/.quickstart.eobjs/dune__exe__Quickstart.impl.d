examples/quickstart.ml: Alloc Arena Fmt Int64 Rewind Rewind_nvm Tm
