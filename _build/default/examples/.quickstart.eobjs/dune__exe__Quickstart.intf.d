examples/quickstart.mli:
