(* A crash-safe task queue built from the extension modules: a persistent
   FIFO (Pqueue) sharded over a distributed log (Tm_group), with the
   autotuner watching the workload.  A producer enqueues work and a
   consumer marks results in a persistent table — each consumption is one
   transaction, so a task is never both lost and unprocessed, even across
   the power failure this demo injects.

     dune exec examples/task_queue.exe                                     *)

open Rewind_nvm
open Rewind
open Rewind_pds

let partitions = 2

let () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let group = Tm_group.create alloc ~root_slot:4 ~partitions in
  let tuner = Autotune.create () in

  (* One queue and one result table per partition. *)
  let queues =
    Array.init partitions (fun p -> Pqueue.create (Tm_group.tm group p) alloc)
  in
  let results = Ptable.create alloc ~slots:256 in

  (* Produce 100 tasks, round-robin over the partitions. *)
  for task = 1 to 100 do
    let p = task mod partitions in
    Tm_group.atomically group ~partition:p (fun tm txn ->
        Autotune.on_begin tuner txn;
        Pqueue.enqueue queues.(p) txn (Int64.of_int task);
        Autotune.on_write tuner txn;
        Autotune.on_commit tuner txn;
        ignore tm)
  done;
  Fmt.pr "produced 100 tasks (%d + %d queued)@."
    (Pqueue.length queues.(0)) (Pqueue.length queues.(1));

  (* Consume, crashing part-way. *)
  Arena.arm_crash arena ~after:500;
  let consumed = ref 0 in
  (try
     for _ = 1 to 100 do
       let p = !consumed mod partitions in
       Tm_group.atomically group ~partition:p (fun tm txn ->
           ignore tm;
           match Pqueue.dequeue queues.(p) txn with
           | Some task ->
               Ptable.set results (Tm_group.tm group p) txn
                 (Int64.to_int task mod 256)
                 task
           | None -> ());
       incr consumed
     done;
     Arena.disarm_crash arena
   with Arena.Crash -> Fmt.pr "*** crash after %d consume transactions ***@." !consumed);

  (* Recovery: each partition recovers independently. *)
  let alloc = Alloc.recover arena in
  let group = Tm_group.attach alloc ~root_slot:4 ~partitions in
  let queues =
    Array.init partitions (fun p ->
        Pqueue.attach (Tm_group.tm group p) alloc
          ~head_cell:(Pqueue.head_cell queues.(p))
          ~tail_cell:(Pqueue.tail_cell queues.(p)))
  in
  (* Invariant: every task is either still queued or recorded — none lost,
     none duplicated. *)
  let queued = Array.fold_left (fun a q -> a + Pqueue.length q) 0 queues in
  let recorded = ref 0 in
  for i = 0 to 255 do
    if Ptable.get results i <> 0L then incr recorded
  done;
  Fmt.pr "after recovery: %d queued + %d recorded = %d@." queued !recorded
    (queued + !recorded);
  assert (queued + !recorded = 100);
  Array.iter (fun q -> assert (Pqueue.well_formed q)) queues;
  Fmt.pr "no task lost or duplicated across the crash.@."
