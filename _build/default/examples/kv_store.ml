(* A small persistent key/value store on the REWIND B+-tree: the kind of
   application the paper's introduction motivates — application data
   structures that *are* the durable representation, with no serialisation
   layer and no separate database.

   Loads a product catalogue, serves transactional updates (including a
   multi-key transaction that must be all-or-nothing), survives a crash in
   the middle of a batch, and prints consistency evidence.

     dune exec examples/kv_store.exe                                       *)

open Rewind_nvm
open Rewind
open Rewind_pds

let cfg = { Rewind.config_1l_nfp with variant = Rewind.Log.Batch 8 }

let () =
  let arena = Arena.create ~size_bytes:(128 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot:2 in
  let inventory = Btree.create (Btree.Logged tm) alloc in
  let root_cell = Btree.root_cell inventory in

  (* Load a catalogue: item id -> stock count. *)
  Tm.atomically tm (fun txn ->
      for item = 1 to 1_000 do
        Btree.insert inventory txn (Int64.of_int item) 100L
      done);
  Fmt.pr "catalogue loaded: %d items, tree %s@." (Btree.size inventory)
    (if Btree.well_formed inventory then "well-formed" else "BROKEN");

  (* A multi-key transaction: move stock between items atomically. *)
  Tm.atomically tm (fun txn ->
      let take item n =
        let v = Option.get (Btree.lookup inventory (Int64.of_int item)) in
        Btree.insert inventory txn (Int64.of_int item) (Int64.sub v (Int64.of_int n))
      in
      let give item n =
        let v = Option.get (Btree.lookup inventory (Int64.of_int item)) in
        Btree.insert inventory txn (Int64.of_int item) (Int64.add v (Int64.of_int n))
      in
      take 1 25;
      give 2 25);
  Fmt.pr "after transfer: item1=%Ld item2=%Ld@."
    (Option.get (Btree.lookup inventory 1L))
    (Option.get (Btree.lookup inventory 2L));

  (* A batch of updates interrupted by a crash at a random-ish point. *)
  Arena.arm_crash arena ~after:2_000;
  (try
     for batch = 0 to 99 do
       Tm.atomically tm (fun txn ->
           for i = 0 to 9 do
             let item = (batch * 10) + i + 1 in
             Btree.insert inventory txn (Int64.of_int item) 7L
           done)
     done;
     Arena.disarm_crash arena
   with Arena.Crash -> Fmt.pr "@.*** power failure mid-batch ***@.");

  (* Recovery. *)
  let alloc = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc ~root_slot:2 in
  let inventory = Btree.attach (Btree.Logged tm2) alloc ~root_cell in
  Fmt.pr "recovered: %d items, tree %s@." (Btree.size inventory)
    (if Btree.well_formed inventory then "well-formed" else "BROKEN");

  (* Every batch must be all-or-nothing: the ten items of a batch carry
     either all 7s (committed) or none (rolled back). *)
  let torn = ref 0 and committed = ref 0 in
  for batch = 0 to 99 do
    let sevens = ref 0 in
    for i = 0 to 9 do
      let item = (batch * 10) + i + 1 in
      if Btree.lookup inventory (Int64.of_int item) = Some 7L then incr sevens
    done;
    if !sevens = 10 then incr committed
    else if !sevens <> 0 then incr torn
  done;
  Fmt.pr "batches fully applied: %d; torn batches: %d@." !committed !torn;
  assert (!torn = 0);
  Fmt.pr "no torn batch: every transaction was atomic across the crash.@."
