(* Atomic Doubly-Linked List tests: functional behaviour plus exhaustive
   crash-point enumeration of Algorithm 1's append/remove windows —
   including crashes *during recovery* (repeated-redo safety). *)

open Rewind_nvm
open Rewind

let fresh () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let alloc = Alloc.create arena in
  (arena, alloc)

let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Functional behaviour                                                *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  check_bool "empty" true (Adll.is_empty l);
  check_int "length" 0 (Adll.length l);
  check_list "elements" [] (Adll.elements l)

let test_append_order () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  List.iter (fun e -> ignore (Adll.append l e)) [ 10; 20; 30 ];
  check_list "fifo order" [ 10; 20; 30 ] (Adll.elements l);
  check_int "length" 3 (Adll.length l);
  check_bool "well formed" true (Adll.well_formed l)

let test_remove_middle () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  let _ = Adll.append l 1 in
  let n2 = Adll.append l 2 in
  let _ = Adll.append l 3 in
  Adll.remove l n2;
  check_list "middle removed" [ 1; 3 ] (Adll.elements l);
  check_bool "well formed" true (Adll.well_formed l)

let test_remove_head_tail () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  let n1 = Adll.append l 1 in
  let _ = Adll.append l 2 in
  let n3 = Adll.append l 3 in
  Adll.remove l n1;
  check_list "head removed" [ 2; 3 ] (Adll.elements l);
  Adll.remove l n3;
  check_list "tail removed" [ 2 ] (Adll.elements l);
  check_bool "well formed" true (Adll.well_formed l)

let test_remove_only_node () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  let n = Adll.append l 7 in
  Adll.remove l n;
  check_bool "empty again" true (Adll.is_empty l);
  check_bool "well formed" true (Adll.well_formed l)

let test_iter_back () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  List.iter (fun e -> ignore (Adll.append l e)) [ 1; 2; 3 ];
  let acc = ref [] in
  Adll.iter_back l (fun n -> acc := Adll.element l n :: !acc);
  check_list "backward order reversed back" [ 1; 2; 3 ] !acc

let test_reattach_without_crash () =
  let _, alloc = fresh () in
  let l = Adll.create alloc in
  List.iter (fun e -> ignore (Adll.append l e)) [ 4; 5 ];
  let l2 = Adll.attach alloc ~base:(Adll.base l) in
  check_list "same content" [ 4; 5 ] (Adll.elements l2)

(* ------------------------------------------------------------------ *)
(* Crash exhaustion                                                    *)
(* ------------------------------------------------------------------ *)

(* Run [op] with a crash armed after [k] persistence events for every k
   until the operation completes without crashing.  After each crash,
   recover and check the invariant; [valid] lists acceptable outcomes. *)
let exhaust_crashes ~build ~op ~valid ~recovery_crashes () =
  let k = ref 0 in
  let completed = ref false in
  let crash_points = ref 0 in
  while not !completed do
    let arena, l, state = build () in
    Arena.arm_crash arena ~after:!k;
    (try
       op l state;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> incr crash_points);
    if Arena.crashed arena then begin
      (* Optionally crash during recovery itself, then recover again. *)
      for j = 0 to recovery_crashes - 1 do
        Arena.clear_crashed arena;
        Arena.arm_crash arena ~after:j;
        (try
           Adll.recover l;
           Arena.disarm_crash arena
         with Arena.Crash -> ())
      done;
      Arena.disarm_crash arena;
      Adll.recover l;
      let elems = Adll.elements l in
      if not (Adll.well_formed l) then
        Alcotest.failf "crash point %d: list not well formed" !k;
      if not (List.mem elems valid) then
        Alcotest.failf "crash point %d: unexpected elements [%s]" !k
          (String.concat ";" (List.map string_of_int elems))
    end;
    incr k
  done;
  !crash_points

let build_list n () =
  let arena, alloc = fresh () in
  let l = Adll.create alloc in
  let nodes = List.map (fun e -> Adll.append l e) (List.init n (fun i -> i + 1)) in
  (arena, l, nodes)

let test_crash_append () =
  let points =
    exhaust_crashes
      ~build:(build_list 3)
      ~op:(fun l _ -> ignore (Adll.append l 99))
      ~valid:[ [ 1; 2; 3 ]; [ 1; 2; 3; 99 ] ]
      ~recovery_crashes:0 ()
  in
  check_bool "several crash points exercised" true (points >= 3)

let test_crash_append_empty_list () =
  ignore
    (exhaust_crashes
       ~build:(build_list 0)
       ~op:(fun l _ -> ignore (Adll.append l 99))
       ~valid:[ []; [ 99 ] ]
       ~recovery_crashes:0 ())

let test_crash_remove_middle () =
  ignore
    (exhaust_crashes
       ~build:(build_list 3)
       ~op:(fun l nodes -> Adll.remove l (List.nth nodes 1))
       ~valid:[ [ 1; 2; 3 ]; [ 1; 3 ] ]
       ~recovery_crashes:0 ())

let test_crash_remove_head () =
  ignore
    (exhaust_crashes
       ~build:(build_list 3)
       ~op:(fun l nodes -> Adll.remove l (List.nth nodes 0))
       ~valid:[ [ 1; 2; 3 ]; [ 2; 3 ] ]
       ~recovery_crashes:0 ())

let test_crash_remove_tail () =
  ignore
    (exhaust_crashes
       ~build:(build_list 3)
       ~op:(fun l nodes -> Adll.remove l (List.nth nodes 2))
       ~valid:[ [ 1; 2; 3 ]; [ 1; 2 ] ]
       ~recovery_crashes:0 ())

let test_crash_remove_only () =
  ignore
    (exhaust_crashes
       ~build:(build_list 1)
       ~op:(fun l nodes -> Adll.remove l (List.nth nodes 0))
       ~valid:[ [ 1 ]; [] ]
       ~recovery_crashes:0 ())

(* Crashes during recovery of a crashed append/remove: recovery must be
   re-runnable any number of times (redo-idempotence, Section 3.2). *)
let test_crash_during_recovery_append () =
  ignore
    (exhaust_crashes
       ~build:(build_list 2)
       ~op:(fun l _ -> ignore (Adll.append l 99))
       ~valid:[ [ 1; 2 ]; [ 1; 2; 99 ] ]
       ~recovery_crashes:8 ())

let test_crash_during_recovery_remove () =
  ignore
    (exhaust_crashes
       ~build:(build_list 3)
       ~op:(fun l nodes -> Adll.remove l (List.nth nodes 1))
       ~valid:[ [ 1; 2; 3 ]; [ 1; 3 ] ]
       ~recovery_crashes:8 ())

(* Recovery on a quiescent list must be a no-op. *)
let test_recover_noop () =
  let arena, l, _ = build_list 3 () in
  Arena.crash arena;
  Adll.recover l;
  check_list "unchanged" [ 1; 2; 3 ] (Adll.elements l)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random op sequences against a model list. *)
let prop_model =
  QCheck.Test.make ~name:"ADLL matches model list" ~count:200
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let _, alloc = fresh () in
      let l = Adll.create alloc in
      let model = ref [] and nodes = ref [] in
      List.iter
        (fun (is_append, v) ->
          if is_append || !nodes = [] then begin
            let n = Adll.append l v in
            model := !model @ [ v ];
            nodes := !nodes @ [ (n, v) ]
          end
          else begin
            let i = v mod List.length !nodes in
            let n, value = List.nth !nodes i in
            Adll.remove l n;
            nodes := List.filteri (fun j _ -> j <> i) !nodes;
            let removed = ref false in
            model :=
              List.filter
                (fun x ->
                  if (not !removed) && x = value then begin
                    removed := true;
                    false
                  end
                  else true)
                !model
          end)
        ops;
      Adll.elements l = List.map snd !nodes && Adll.well_formed l)

(* Random crash point inside a random op sequence: after recovery the list
   must be well-formed and hold a prefix-consistent state. *)
let prop_crash_any_point =
  QCheck.Test.make ~name:"ADLL recovery from random crash points" ~count:300
    QCheck.(pair (int_bound 200) (int_range 1 20))
    (fun (crash_after, n_ops) ->
      let arena, alloc = fresh () in
      let l = Adll.create alloc in
      Arena.arm_crash arena ~after:crash_after;
      (try
         for i = 1 to n_ops do
           let n = Adll.append l i in
           if i mod 3 = 0 then Adll.remove l n
         done;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then Adll.recover l;
      Adll.well_formed l)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "adll"
    [
      ( "functional",
        [
          tc "empty" `Quick test_empty;
          tc "append order" `Quick test_append_order;
          tc "remove middle" `Quick test_remove_middle;
          tc "remove head/tail" `Quick test_remove_head_tail;
          tc "remove only node" `Quick test_remove_only_node;
          tc "iter back" `Quick test_iter_back;
          tc "reattach" `Quick test_reattach_without_crash;
        ] );
      ( "crash-exhaustion",
        [
          tc "append" `Quick test_crash_append;
          tc "append to empty" `Quick test_crash_append_empty_list;
          tc "remove middle" `Quick test_crash_remove_middle;
          tc "remove head" `Quick test_crash_remove_head;
          tc "remove tail" `Quick test_crash_remove_tail;
          tc "remove only" `Quick test_crash_remove_only;
          tc "recovery crash (append)" `Quick test_crash_during_recovery_append;
          tc "recovery crash (remove)" `Quick test_crash_during_recovery_remove;
          tc "recover is noop when quiescent" `Quick test_recover_noop;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_crash_any_point;
        ] );
    ]
