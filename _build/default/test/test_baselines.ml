(* Tests for the baseline storage managers (Stasis-like / BerkeleyDB-like /
   Shore-MT-like): KV semantics, WAL durability rules, rollback, crash
   recovery, and the cost-profile ordering the evaluation relies on. *)

open Rewind_nvm
open Rewind_baselines

let systems =
  [
    ("stasis", fun () -> Stasis_like.create ~nbuckets:64 ());
    ("bdb", fun () -> Bdb_like.create ~nbuckets:64 ());
    ("shore", fun () -> Shore_like.create ~nbuckets:64 ());
  ]

let check_i64o = Alcotest.(check (option int64))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Functional                                                          *)
(* ------------------------------------------------------------------ *)

let test_put_lookup mk () =
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  for k = 1 to 500 do
    Paged_kv.put kv t (Int64.of_int k) (Int64.of_int (k * 2))
  done;
  Paged_kv.commit kv t;
  check_i64o "found" (Some 84L) (Paged_kv.lookup kv 42L);
  check_i64o "absent" None (Paged_kv.lookup kv 1000L);
  check_int "size" 500 (Paged_kv.size kv)

let test_update_in_place mk () =
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  Paged_kv.put kv t 7L 1L;
  Paged_kv.put kv t 7L 2L;
  Paged_kv.commit kv t;
  check_i64o "updated" (Some 2L) (Paged_kv.lookup kv 7L);
  check_int "one entry" 1 (Paged_kv.size kv)

let test_delete mk () =
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  for k = 1 to 100 do
    Paged_kv.put kv t (Int64.of_int k) (Int64.of_int k)
  done;
  check_bool "delete" true (Paged_kv.delete kv t 50L);
  check_bool "delete absent" false (Paged_kv.delete kv t 50L);
  Paged_kv.commit kv t;
  check_i64o "gone" None (Paged_kv.lookup kv 50L);
  check_int "99 left" 99 (Paged_kv.size kv)

let test_rollback mk () =
  let kv = mk () in
  let t1 = Paged_kv.begin_txn kv in
  Paged_kv.put kv t1 1L 100L;
  Paged_kv.commit kv t1;
  let t2 = Paged_kv.begin_txn kv in
  Paged_kv.put kv t2 1L 999L;
  Paged_kv.put kv t2 2L 200L;
  ignore (Paged_kv.delete kv t2 1L);
  Paged_kv.rollback kv t2;
  check_i64o "restored" (Some 100L) (Paged_kv.lookup kv 1L);
  check_i64o "insert undone" None (Paged_kv.lookup kv 2L)

(* ------------------------------------------------------------------ *)
(* Crash & recovery                                                    *)
(* ------------------------------------------------------------------ *)

let test_committed_survives mk () =
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  for k = 1 to 300 do
    Paged_kv.put kv t (Int64.of_int k) (Int64.of_int (k * 3))
  done;
  Paged_kv.commit kv t;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  check_i64o "durable after crash" (Some 30L) (Paged_kv.lookup kv 10L);
  check_int "size" 300 (Paged_kv.size kv)

let test_uncommitted_lost_or_undone mk () =
  let kv = mk () in
  let t1 = Paged_kv.begin_txn kv in
  Paged_kv.put kv t1 1L 11L;
  Paged_kv.commit kv t1;
  let t2 = Paged_kv.begin_txn kv in
  Paged_kv.put kv t2 1L 99L;
  Paged_kv.put kv t2 2L 22L;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  check_i64o "committed value back" (Some 11L) (Paged_kv.lookup kv 1L);
  check_i64o "uncommitted gone" None (Paged_kv.lookup kv 2L)

(* Exercise the flush path: force a page flush via checkpoint after
   committing, then crash mid-second-transaction. *)
let test_flush_then_crash mk () =
  let kv = mk () in
  let t1 = Paged_kv.begin_txn kv in
  for k = 1 to 50 do
    Paged_kv.put kv t1 (Int64.of_int k) 1L
  done;
  Paged_kv.commit kv t1;
  Paged_kv.checkpoint kv;
  let t2 = Paged_kv.begin_txn kv in
  Paged_kv.put kv t2 1L 999L;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  check_i64o "checkpointed value stands" (Some 1L) (Paged_kv.lookup kv 1L);
  check_int "size unchanged" 50 (Paged_kv.size kv)

let test_double_crash mk () =
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  Paged_kv.put kv t 5L 50L;
  Paged_kv.commit kv t;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  check_i64o "still there" (Some 50L) (Paged_kv.lookup kv 5L)

let test_overflow_chains_survive mk () =
  (* few buckets + many keys forces overflow pages; the allocation
     high-water mark must be rediscovered at recovery *)
  let kv = mk () in
  let t = Paged_kv.begin_txn kv in
  for k = 1 to 2000 do
    Paged_kv.put kv t (Int64.of_int k) (Int64.of_int k)
  done;
  Paged_kv.commit kv t;
  Paged_kv.checkpoint kv;
  Paged_kv.crash kv;
  Paged_kv.recover kv;
  check_int "all entries" 2000 (Paged_kv.size kv);
  (* further inserts must not corrupt existing chains *)
  let t2 = Paged_kv.begin_txn kv in
  for k = 2001 to 2200 do
    Paged_kv.put kv t2 (Int64.of_int k) (Int64.of_int k)
  done;
  Paged_kv.commit kv t2;
  check_int "grown" 2200 (Paged_kv.size kv)

(* ------------------------------------------------------------------ *)
(* Cost-shape sanity                                                   *)
(* ------------------------------------------------------------------ *)

(* The per-update cost ordering the paper's Figure 7 relies on: every
   baseline is at least an order of magnitude slower than an unlogged
   NVM store. *)
let test_baselines_expensive () =
  let cost mk =
    let kv = mk () in
    Clock.reset ();
    for k = 1 to 200 do
      let t = Paged_kv.begin_txn kv in
      Paged_kv.put kv t (Int64.of_int k) 1L;
      Paged_kv.commit kv t
    done;
    Clock.now () / 200
  in
  List.iter
    (fun (name, mk) ->
      let c = cost mk in
      if c < 5000 then
        Alcotest.failf "%s: per-txn cost %dns unexpectedly low" name c)
    systems

(* Shore's in-memory undo buffers make rollback much cheaper than the
   device-walking systems. *)
let test_rollback_cost_ordering () =
  let cost mk =
    let kv = mk () in
    (* populate + a long log tail on the device *)
    let t0 = Paged_kv.begin_txn kv in
    for k = 1 to 1000 do
      Paged_kv.put kv t0 (Int64.of_int k) 1L
    done;
    Paged_kv.commit kv t0;
    let t = Paged_kv.begin_txn kv in
    for k = 1 to 200 do
      Paged_kv.put kv t (Int64.of_int k) 2L
    done;
    (* span, not reset: Sim_mutex release times live on the same clock *)
    let s = Clock.start () in
    Paged_kv.rollback kv t;
    Clock.elapsed s
  in
  let stasis = cost (fun () -> Stasis_like.create ~nbuckets:64 ()) in
  let shore = cost (fun () -> Shore_like.create ~nbuckets:64 ()) in
  check_bool "shore rollback cheaper than stasis" true (shore < stasis)

let () =
  let tc = Alcotest.test_case in
  let per_system name f =
    List.map (fun (sn, mk) -> tc (name ^ " (" ^ sn ^ ")") `Quick (f mk)) systems
  in
  Alcotest.run "baselines"
    [
      ("put-lookup", per_system "put/lookup" test_put_lookup);
      ("update", per_system "update in place" test_update_in_place);
      ("delete", per_system "delete" test_delete);
      ("rollback", per_system "rollback" test_rollback);
      ("crash-committed", per_system "committed survives" test_committed_survives);
      ( "crash-uncommitted",
        per_system "uncommitted undone" test_uncommitted_lost_or_undone );
      ("flush-crash", per_system "flush then crash" test_flush_then_crash);
      ("double-crash", per_system "double crash" test_double_crash);
      ("overflow", per_system "overflow chains" test_overflow_chains_survive);
      ( "costs",
        [
          tc "baselines are expensive" `Quick test_baselines_expensive;
          tc "rollback ordering" `Quick test_rollback_cost_ordering;
        ] );
    ]
