test/test_pds.ml: Alcotest Alloc Arena Btree Fmt Hashtbl Int64 List Log Map Phash Plist Ptable QCheck QCheck_alcotest Rewind Rewind_nvm Rewind_pds Tm
