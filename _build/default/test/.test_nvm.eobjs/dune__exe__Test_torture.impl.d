test/test_torture.ml: Alcotest Alloc Arena Array Clock Fmt Hashtbl Int64 List Log QCheck QCheck_alcotest Rewind Rewind_nvm Sim_mutex Sim_threads Stats Tm
