test/test_adll.mli:
