test/test_benchshape.mli:
