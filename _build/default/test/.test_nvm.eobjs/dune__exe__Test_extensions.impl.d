test/test_extensions.ml: Alcotest Alloc Arena Array Autotune Fmt Int64 List Log Record Rewind Rewind_nvm Sim_threads String Tm
