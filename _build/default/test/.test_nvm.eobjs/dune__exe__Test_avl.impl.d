test/test_avl.ml: Alcotest Alloc Arena Avl_index Gen Int64 List Log QCheck QCheck_alcotest Rewind Rewind_nvm String
