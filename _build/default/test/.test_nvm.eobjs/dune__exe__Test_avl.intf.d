test/test_avl.mli:
