test/test_tm.ml: Alcotest Alloc Arena Array Fmt Gen Hashtbl Int64 List Log QCheck QCheck_alcotest Rewind Rewind_nvm Tm
