test/test_adll.ml: Adll Alcotest Alloc Arena List QCheck QCheck_alcotest Rewind Rewind_nvm String
