test/test_pds.mli:
