test/test_benchshape.ml: Alcotest Figures List Rewind_benchlib Series
