test/test_log.ml: Alcotest Alloc Arena Clock Fmt Int64 List Log QCheck QCheck_alcotest Record Rewind Rewind_nvm Stats
