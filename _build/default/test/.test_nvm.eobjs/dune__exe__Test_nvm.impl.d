test/test_nvm.ml: Alcotest Alloc Arena Block_dev Bytes Clock Config Gen Hashtbl Int64 List QCheck QCheck_alcotest Rewind_nvm Sim_mutex Stats
