test/test_tpcc.ml: Alcotest Alloc Arena Array Datagen Int64 List Neworder Option Rewind Rewind_nvm Rewind_pds Rewind_tpcc Rng Schema Workload
