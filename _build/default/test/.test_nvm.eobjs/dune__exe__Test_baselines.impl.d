test/test_baselines.ml: Alcotest Bdb_like Clock Int64 List Paged_kv Rewind_baselines Rewind_nvm Shore_like Stasis_like
