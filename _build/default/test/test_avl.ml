(* Tests for the Atomic AVL Tree: AVL semantics, logged-write atomicity,
   crash exhaustion over insert/remove (including tree rebalancing), and
   recovery idempotence under repeated crashes. *)

open Rewind_nvm
open Rewind

let fresh () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let ilog = Log.create Log.Optimized ~bucket_cap:64 alloc ~root_slot:2 in
  let idx = Avl_index.create alloc ~ilog in
  Arena.root_set arena 3 (Int64.of_int (Avl_index.root_ptr idx));
  (arena, alloc, ilog, idx)

let reattach arena =
  let alloc = Alloc.recover arena in
  let ilog = Log.attach Log.Optimized ~bucket_cap:64 alloc ~root_slot:2 in
  let root_ptr = Int64.to_int (Arena.root_get arena 3) in
  let idx = Avl_index.attach alloc ~ilog ~root_ptr in
  Avl_index.recover idx;
  idx

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Functional behaviour                                                *)
(* ------------------------------------------------------------------ *)

let test_insert_find () =
  let _, _, _, idx = fresh () in
  List.iter (fun k -> ignore (Avl_index.insert idx k)) [ 5; 3; 8; 1; 4 ];
  check_bool "find 4" true (Avl_index.mem idx 4);
  check_bool "find 8" true (Avl_index.mem idx 8);
  check_bool "no 7" false (Avl_index.mem idx 7);
  check_list "sorted keys" [ 1; 3; 4; 5; 8 ] (Avl_index.keys idx);
  check_bool "avl invariant" true (Avl_index.well_formed idx)

let test_insert_idempotent () =
  let _, _, _, idx = fresh () in
  let a = Avl_index.insert idx 5 in
  let b = Avl_index.insert idx 5 in
  check_int "same node" a b;
  check_int "size 1" 1 (Avl_index.size idx)

let test_sequential_inserts_balance () =
  let _, _, _, idx = fresh () in
  for k = 1 to 64 do
    ignore (Avl_index.insert idx k)
  done;
  check_int "size" 64 (Avl_index.size idx);
  check_bool "balanced" true (Avl_index.well_formed idx)

let test_remove () =
  let _, _, _, idx = fresh () in
  List.iter (fun k -> ignore (Avl_index.insert idx k)) [ 5; 3; 8; 1; 4; 9; 7 ];
  check_bool "removed leaf" true (Avl_index.remove idx 1);
  check_bool "removed inner (two children)" true (Avl_index.remove idx 8);
  check_bool "removed root-ish" true (Avl_index.remove idx 5);
  check_bool "remove absent" false (Avl_index.remove idx 100);
  check_list "remaining" [ 3; 4; 7; 9 ] (Avl_index.keys idx);
  check_bool "avl invariant" true (Avl_index.well_formed idx)

let test_payload_fields () =
  let _, _, _, idx = fresh () in
  let n = Avl_index.insert idx 7 in
  Avl_index.op idx (fun () ->
      Avl_index.set_head_record idx n 4096;
      Avl_index.set_status idx n 2;
      Avl_index.set_undo_next idx n 8192);
  Alcotest.(check int) "head" 4096 (Avl_index.head_record idx n);
  Alcotest.(check int) "status" 2 (Avl_index.status idx n);
  Alcotest.(check int) "undo next" 8192 (Avl_index.undo_next idx n)

let test_internal_log_cleared_after_op () =
  let _, _, ilog, idx = fresh () in
  for k = 1 to 20 do
    ignore (Avl_index.insert idx k)
  done;
  check_int "internal log empty between ops" 0 (Log.length ilog)

(* ------------------------------------------------------------------ *)
(* Crash exhaustion                                                    *)
(* ------------------------------------------------------------------ *)

(* Run [op] on a freshly-built tree with a crash armed after every k and,
   after recovery, require the tree to be either pre-op or post-op. *)
let exhaust ~keys ~op ~pre ~post ~recovery_crashes =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, _, _, idx = fresh () in
    List.iter (fun key -> ignore (Avl_index.insert idx key)) keys;
    Arena.arm_crash arena ~after:!k;
    (try
       op idx;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      for j = 0 to recovery_crashes - 1 do
        Arena.clear_crashed arena;
        Arena.arm_crash arena ~after:j;
        (try ignore (reattach arena) with Arena.Crash -> ())
      done;
      Arena.disarm_crash arena;
      Arena.clear_crashed arena;
      let idx2 = reattach arena in
      if not (Avl_index.well_formed idx2) then
        Alcotest.failf "crash point %d: AVL invariant broken" !k;
      let ks = Avl_index.keys idx2 in
      if ks <> pre && ks <> post then
        Alcotest.failf "crash point %d: unexpected keys [%s]" !k
          (String.concat ";" (List.map string_of_int ks))
    end;
    incr k
  done

let test_crash_insert_rebalancing () =
  (* inserting 6 into [1..5] triggers rotations *)
  exhaust ~keys:[ 1; 2; 3; 4; 5 ]
    ~op:(fun idx -> ignore (Avl_index.insert idx 6))
    ~pre:[ 1; 2; 3; 4; 5 ] ~post:[ 1; 2; 3; 4; 5; 6 ] ~recovery_crashes:0

let test_crash_insert_empty () =
  exhaust ~keys:[]
    ~op:(fun idx -> ignore (Avl_index.insert idx 1))
    ~pre:[] ~post:[ 1 ] ~recovery_crashes:0

let test_crash_remove_two_children () =
  exhaust ~keys:[ 5; 3; 8; 1; 4; 9; 7 ]
    ~op:(fun idx -> ignore (Avl_index.remove idx 5))
    ~pre:[ 1; 3; 4; 5; 7; 8; 9 ] ~post:[ 1; 3; 4; 7; 8; 9 ] ~recovery_crashes:0

let test_crash_remove_with_recovery_crashes () =
  exhaust ~keys:[ 2; 1; 3 ]
    ~op:(fun idx -> ignore (Avl_index.remove idx 2))
    ~pre:[ 1; 2; 3 ] ~post:[ 1; 3 ] ~recovery_crashes:6

let test_crash_insert_with_recovery_crashes () =
  exhaust ~keys:[ 2; 1; 3 ]
    ~op:(fun idx -> ignore (Avl_index.insert idx 4))
    ~pre:[ 1; 2; 3 ] ~post:[ 1; 2; 3; 4 ] ~recovery_crashes:6

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_model =
  QCheck.Test.make ~name:"AAVLT matches a set model" ~count:100
    QCheck.(list (pair bool (int_bound 50)))
    (fun ops ->
      let _, _, _, idx = fresh () in
      let model = ref [] in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            ignore (Avl_index.insert idx k);
            if not (List.mem k !model) then model := k :: !model
          end
          else begin
            ignore (Avl_index.remove idx k);
            model := List.filter (fun x -> x <> k) !model
          end)
        ops;
      Avl_index.keys idx = List.sort compare !model && Avl_index.well_formed idx)

let prop_crash_random =
  QCheck.Test.make ~name:"AAVLT survives random crash points" ~count:150
    QCheck.(pair (int_bound 600) (list_of_size (Gen.int_range 1 25) (int_bound 40)))
    (fun (crash_after, keys) ->
      let arena, _, _, idx = fresh () in
      Arena.arm_crash arena ~after:crash_after;
      (try
         List.iter
           (fun k ->
             ignore (Avl_index.insert idx k);
             if k mod 3 = 0 then ignore (Avl_index.remove idx k))
           keys;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let idx2 = reattach arena in
        Avl_index.well_formed idx2
      end
      else true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "avl"
    [
      ( "functional",
        [
          tc "insert/find" `Quick test_insert_find;
          tc "insert idempotent" `Quick test_insert_idempotent;
          tc "sequential inserts balance" `Quick test_sequential_inserts_balance;
          tc "remove" `Quick test_remove;
          tc "payload fields" `Quick test_payload_fields;
          tc "internal log cleared" `Quick test_internal_log_cleared_after_op;
        ] );
      ( "crash-exhaustion",
        [
          tc "insert with rebalancing" `Slow test_crash_insert_rebalancing;
          tc "insert into empty" `Quick test_crash_insert_empty;
          tc "remove two children" `Slow test_crash_remove_two_children;
          tc "remove + recovery crashes" `Quick test_crash_remove_with_recovery_crashes;
          tc "insert + recovery crashes" `Quick test_crash_insert_with_recovery_crashes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_model;
          QCheck_alcotest.to_alcotest prop_crash_random;
        ] );
    ]
