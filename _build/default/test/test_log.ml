(* Tests for the three log implementations (Simple / Optimized / Batch):
   append/iterate/remove behaviour, batch persistence semantics, cost
   properties, and post-crash reattachment. *)

open Rewind_nvm
open Rewind

let variants =
  [ ("simple", Log.Simple); ("optimized", Log.Optimized); ("batch8", Log.Batch 8) ]

let fresh () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  (arena, alloc)

let mk_record alloc ~lsn ~txn =
  Record.make alloc ~lsn ~txn ~typ:Record.Update ~addr:(8 * lsn)
    ~old_value:0L ~new_value:(Int64.of_int lsn) ~undo_next:0 ~prev_same_txn:0

let lsns arena log =
  let acc = ref [] in
  Log.iter log (fun r -> acc := Record.lsn arena r :: !acc);
  List.rev !acc

let lsns_back arena log =
  let acc = ref [] in
  Log.iter_back log (fun r -> acc := Record.lsn arena r :: !acc);
  List.rev !acc

let check_list = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Behaviour shared by all variants                                    *)
(* ------------------------------------------------------------------ *)

let test_append_iterate variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  check_list "forward order" (List.init 10 (fun i -> i + 1)) (lsns arena log);
  check_list "backward order"
    (List.rev (List.init 10 (fun i -> i + 1)))
    (lsns_back arena log);
  check_int "length" 10 (Log.length log)

let test_remove_where variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:(i mod 2))
  done;
  Log.remove_where log (fun r -> Record.txn arena r = 0);
  check_list "odd lsns remain" [ 1; 3; 5; 7; 9 ] (lsns arena log)

let test_remove_all_then_append variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 9 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.remove_where log (fun _ -> true);
  check_int "empty" 0 (Log.length log);
  Log.append log (mk_record alloc ~lsn:42 ~txn:1);
  check_list "usable after emptying" [ 42 ] (lsns arena log)

let test_clear_all variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.clear_all log;
  check_int "cleared" 0 (Log.length log);
  Log.append log (mk_record alloc ~lsn:5 ~txn:1);
  check_list "fresh log usable" [ 5 ] (lsns arena log)

(* Reattach after a clean crash: everything persistent must reappear and
   the cursor must allow further appends. *)
let test_crash_reattach variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append ~is_end:(i = 10) log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach variant ~bucket_cap:4 alloc ~root_slot:2 in
  check_list "records recovered" (List.init 10 (fun i -> i + 1)) (lsns arena log2);
  Log.append log2 (mk_record alloc ~lsn:11 ~txn:1);
  check_list "append after recovery"
    (List.init 11 (fun i -> i + 1))
    (lsns arena log2)

(* ------------------------------------------------------------------ *)
(* Batch-specific persistence semantics                                *)
(* ------------------------------------------------------------------ *)

(* Records beyond the last group fence are lost by a crash — and recovery
   must not see them. *)
let test_batch_untrusted_tail () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 11 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  (* group of 8 persisted; 9..11 pending *)
  check_int "pending" 3 (Log.pending log);
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "only fenced prefix survives"
    (List.init 8 (fun i -> i + 1))
    (lsns arena log2)

let test_batch_end_forces () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 3 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.append ~is_end:true log (mk_record alloc ~lsn:4 ~txn:1);
  check_int "nothing pending after END" 0 (Log.pending log);
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "all survive thanks to END" [ 1; 2; 3; 4 ] (lsns arena log2)

let test_batch_flush_group () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 5 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.flush_group log;
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "explicit flush persists tail" [ 1; 2; 3; 4; 5 ] (lsns arena log2)

(* ------------------------------------------------------------------ *)
(* Cost properties                                                     *)
(* ------------------------------------------------------------------ *)

(* The whole point of Batch: one fence per [group] records instead of one
   per record. *)
let test_fence_counts () =
  let count variant =
    let arena, alloc = fresh () in
    let log = Log.create variant ~bucket_cap:1000 alloc ~root_slot:2 in
    let before = (Arena.stats arena).Stats.fences in
    for i = 1 to 64 do
      Log.append log (mk_record alloc ~lsn:i ~txn:1)
    done;
    (Arena.stats arena).Stats.fences - before
  in
  let opt = count Log.Optimized in
  let batch = count (Log.Batch 8) in
  check_int "optimized: one fence per record" 64 opt;
  check_int "batch: one fence per group" 8 batch

let test_batch_cheaper_than_optimized_than_simple () =
  let cost variant =
    let arena, alloc = fresh () in
    let log = Log.create variant ~bucket_cap:1000 alloc ~root_slot:2 in
    Clock.reset ();
    for i = 1 to 256 do
      Log.append log (mk_record alloc ~lsn:i ~txn:1)
    done;
    ignore arena;
    Clock.now ()
  in
  let simple = cost Log.Simple in
  let opt = cost Log.Optimized in
  let batch = cost (Log.Batch 8) in
  check_bool "optimized beats simple" true (opt < simple);
  check_bool "batch beats optimized" true (batch < opt)

(* ------------------------------------------------------------------ *)
(* Crash-point property                                                *)
(* ------------------------------------------------------------------ *)

(* After a crash at any point, reattachment yields a prefix of the appended
   records (modulo batch groups), iteration works and further appends
   succeed. *)
let prop_crash_prefix variant =
  QCheck.Test.make
    ~name:(Fmt.str "%a: crash leaves a clean prefix" Log.pp_variant variant)
    ~count:150
    QCheck.(int_bound 400)
    (fun crash_after ->
      let arena, alloc = fresh () in
      let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
      Arena.arm_crash arena ~after:crash_after;
      (try
         for i = 1 to 30 do
           Log.append log (mk_record alloc ~lsn:i ~txn:1)
         done;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let alloc = Alloc.recover arena in
        let log2 = Log.attach variant ~bucket_cap:4 alloc ~root_slot:2 in
        let ls = lsns arena log2 in
        let expected_prefix = List.init (List.length ls) (fun i -> i + 1) in
        ls = expected_prefix
        && begin
             Log.append log2 (mk_record alloc ~lsn:999 ~txn:1);
             let ls' = lsns arena log2 in
             ls' = expected_prefix @ [ 999 ]
           end
      end
      else true)

let () =
  let tc = Alcotest.test_case in
  let per_variant name f =
    List.map (fun (vn, v) -> tc (name ^ " (" ^ vn ^ ")") `Quick (f v)) variants
  in
  Alcotest.run "log"
    [
      ("append-iterate", per_variant "append/iterate" test_append_iterate);
      ("remove", per_variant "remove_where" test_remove_where);
      ("empty-refill", per_variant "remove all then append" test_remove_all_then_append);
      ("clear-all", per_variant "clear_all" test_clear_all);
      ("crash-reattach", per_variant "crash reattach" test_crash_reattach);
      ( "batch-semantics",
        [
          tc "untrusted tail dropped" `Quick test_batch_untrusted_tail;
          tc "END forces persistence" `Quick test_batch_end_forces;
          tc "flush_group persists tail" `Quick test_batch_flush_group;
        ] );
      ( "costs",
        [
          tc "fence counts" `Quick test_fence_counts;
          tc "variant ordering" `Quick test_batch_cheaper_than_optimized_than_simple;
        ] );
      ( "properties",
        List.map
          (fun (_, v) -> QCheck_alcotest.to_alcotest (prop_crash_prefix v))
          variants );
    ]
