(* Transaction-manager tests: atomicity and durability across the paper's
   four configurations (1L/2L x force/no-force) and three log variants,
   with crash injection at arbitrary and exhaustive points, double-crash
   recovery, checkpointing, and a randomized workload-vs-model property. *)

open Rewind_nvm
open Rewind

let all_configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("1L-NFP-simple", { Rewind.config_1l_nfp with variant = Log.Simple });
    ("1L-NFP-batch", { Rewind.config_1l_nfp with variant = Log.Batch 8 });
    ("1L-FP-batch", { Rewind.config_1l_fp with variant = Log.Batch 8 });
  ]

let root_slot = 2

let fresh cfg =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  (arena, alloc, tm)

(* Ten word-sized cells of user data. *)
let cells alloc = Array.init 10 (fun _ -> Alloc.alloc alloc 8)

let reattach cfg arena =
  let alloc = Alloc.recover arena in
  Tm.attach ~cfg alloc ~root_slot

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Basic transactional behaviour (no crash)                            *)
(* ------------------------------------------------------------------ *)

let test_commit_visible cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:c.(0) ~value:11L;
  Tm.write tm txn ~addr:c.(1) ~value:22L;
  Tm.commit tm txn;
  check_i64 "cell 0" 11L (Arena.read arena c.(0));
  check_i64 "cell 1" 22L (Arena.read arena c.(1))

let test_rollback_restores cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t1 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:c.(0) ~value:5L;
  Tm.commit tm t1;
  let t2 = Tm.begin_txn tm in
  Tm.write tm t2 ~addr:c.(0) ~value:99L;
  Tm.write tm t2 ~addr:c.(1) ~value:88L;
  check_i64 "visible before rollback" 99L (Arena.read arena c.(0));
  Tm.rollback tm t2;
  check_i64 "cell 0 restored" 5L (Arena.read arena c.(0));
  check_i64 "cell 1 restored" 0L (Arena.read arena c.(1))

let test_rollback_multiple_writes_same_cell cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t = Tm.begin_txn tm in
  Tm.write tm t ~addr:c.(0) ~value:1L;
  Tm.write tm t ~addr:c.(0) ~value:2L;
  Tm.write tm t ~addr:c.(0) ~value:3L;
  Tm.rollback tm t;
  check_i64 "back to initial" 0L (Arena.read arena c.(0))

let test_interleaved_txns cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t1 = Tm.begin_txn tm in
  let t2 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:c.(0) ~value:1L;
  Tm.write tm t2 ~addr:c.(1) ~value:2L;
  Tm.write tm t1 ~addr:c.(2) ~value:3L;
  Tm.commit tm t1;
  Tm.rollback tm t2;
  check_i64 "t1 cell kept" 1L (Arena.read arena c.(0));
  check_i64 "t2 cell undone" 0L (Arena.read arena c.(1));
  check_i64 "t1 second cell kept" 3L (Arena.read arena c.(2))

let test_atomically cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  Tm.atomically tm (fun txn -> Tm.write tm txn ~addr:c.(0) ~value:7L);
  check_i64 "committed" 7L (Arena.read arena c.(0));
  (try
     Tm.atomically tm (fun txn ->
         Tm.write tm txn ~addr:c.(0) ~value:8L;
         failwith "boom")
   with Failure _ -> ());
  check_i64 "rolled back on exception" 7L (Arena.read arena c.(0))

(* Force policy clears the log at commit; no-force leaves it to checkpoints. *)
let test_force_clears_log cfg () =
  let _, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t = Tm.begin_txn tm in
  Tm.write tm t ~addr:c.(0) ~value:1L;
  Tm.commit tm t;
  match (cfg.Rewind.policy, cfg.Rewind.layers) with
  | Tm.Force, Tm.One_layer ->
      Alcotest.(check int) "log empty after commit" 0 (Log.length (Tm.log tm))
  | Tm.No_force, Tm.One_layer ->
      check_bool "log retains records" true (Log.length (Tm.log tm) > 0)
  | _, Tm.Two_layer -> ()

let test_checkpoint_clears cfg () =
  let _, alloc, tm = fresh cfg in
  let c = cells alloc in
  for i = 0 to 4 do
    let t = Tm.begin_txn tm in
    Tm.write tm t ~addr:c.(i) ~value:(Int64.of_int i);
    Tm.commit tm t
  done;
  Tm.checkpoint tm;
  match cfg.Rewind.layers with
  | Tm.One_layer ->
      Alcotest.(check int) "log empty after checkpoint" 0 (Log.length (Tm.log tm))
  | Tm.Two_layer -> ()

(* ------------------------------------------------------------------ *)
(* Crash + recovery                                                    *)
(* ------------------------------------------------------------------ *)

let test_committed_survives_crash cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t = Tm.begin_txn tm in
  Tm.write tm t ~addr:c.(0) ~value:42L;
  Tm.write tm t ~addr:c.(1) ~value:43L;
  Tm.commit tm t;
  Arena.crash arena;
  let _tm2 = reattach cfg arena in
  check_i64 "cell 0 durable" 42L (Arena.read arena c.(0));
  check_i64 "cell 1 durable" 43L (Arena.read arena c.(1))

let test_uncommitted_rolled_back cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t1 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:c.(0) ~value:1L;
  Tm.commit tm t1;
  let t2 = Tm.begin_txn tm in
  Tm.write tm t2 ~addr:c.(0) ~value:66L;
  Tm.write tm t2 ~addr:c.(1) ~value:77L;
  (* no commit *)
  Arena.crash arena;
  let _tm2 = reattach cfg arena in
  check_i64 "cell 0 back to committed value" 1L (Arena.read arena c.(0));
  check_i64 "cell 1 back to zero" 0L (Arena.read arena c.(1))

let test_crash_mid_rollback cfg () =
  (* Crash during an explicit rollback; recovery must complete the undo. *)
  let exercised = ref 0 in
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh cfg in
    let c = cells alloc in
    let t1 = Tm.begin_txn tm in
    Tm.write tm t1 ~addr:c.(0) ~value:1L;
    Tm.commit tm t1;
    let t2 = Tm.begin_txn tm in
    Tm.write tm t2 ~addr:c.(0) ~value:50L;
    Tm.write tm t2 ~addr:c.(1) ~value:60L;
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.rollback tm t2;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> incr exercised);
    if Arena.crashed arena then begin
      let _tm2 = reattach cfg arena in
      check_i64 (Fmt.str "crash %d: cell0" !k) 1L (Arena.read arena c.(0));
      check_i64 (Fmt.str "crash %d: cell1" !k) 0L (Arena.read arena c.(1))
    end;
    incr k
  done;
  check_bool "exercised crash points" true (!exercised > 0)

let test_crash_mid_commit_atomic cfg () =
  (* Crash at every point of commit: afterwards the transaction is either
     fully applied or fully undone. *)
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh cfg in
    let c = cells alloc in
    let t = Tm.begin_txn tm in
    Tm.write tm t ~addr:c.(0) ~value:10L;
    Tm.write tm t ~addr:c.(1) ~value:20L;
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.commit tm t;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let _tm2 = reattach cfg arena in
      let v0 = Arena.read arena c.(0) and v1 = Arena.read arena c.(1) in
      if not ((v0 = 10L && v1 = 20L) || (v0 = 0L && v1 = 0L)) then
        Alcotest.failf "crash %d: torn commit (%Ld, %Ld)" !k v0 v1
    end;
    incr k
  done

let test_double_crash_recovery cfg () =
  (* Crash during recovery itself, repeatedly; the final recovery must
     still yield a consistent state. *)
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t1 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:c.(0) ~value:5L;
  Tm.commit tm t1;
  let t2 = Tm.begin_txn tm in
  Tm.write tm t2 ~addr:c.(0) ~value:70L;
  Tm.write tm t2 ~addr:c.(1) ~value:80L;
  Arena.crash arena;
  for j = 0 to 25 do
    Arena.clear_crashed arena;
    Arena.arm_crash arena ~after:j;
    try ignore (reattach cfg arena) with Arena.Crash -> ()
  done;
  Arena.disarm_crash arena;
  Arena.clear_crashed arena;
  let _tm = reattach cfg arena in
  check_i64 "cell0 is committed value" 5L (Arena.read arena c.(0));
  check_i64 "cell1 is rolled back" 0L (Arena.read arena c.(1))

let test_crash_after_checkpoint cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = cells alloc in
  let t1 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:c.(0) ~value:1L;
  Tm.commit tm t1;
  Tm.checkpoint tm;
  let t2 = Tm.begin_txn tm in
  Tm.write tm t2 ~addr:c.(1) ~value:2L;
  Tm.commit tm t2;
  let t3 = Tm.begin_txn tm in
  Tm.write tm t3 ~addr:c.(2) ~value:3L;
  Arena.crash arena;
  let _tm2 = reattach cfg arena in
  check_i64 "pre-checkpoint commit" 1L (Arena.read arena c.(0));
  check_i64 "post-checkpoint commit" 2L (Arena.read arena c.(1));
  check_i64 "in-flight rolled back" 0L (Arena.read arena c.(2))

let test_crash_mid_checkpoint cfg () =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh cfg in
    let c = cells alloc in
    let t1 = Tm.begin_txn tm in
    Tm.write tm t1 ~addr:c.(0) ~value:9L;
    Tm.commit tm t1;
    let t2 = Tm.begin_txn tm in
    Tm.write tm t2 ~addr:c.(1) ~value:33L;
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.checkpoint tm;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let _tm2 = reattach cfg arena in
      check_i64 (Fmt.str "crash %d: committed survives" !k) 9L
        (Arena.read arena c.(0));
      check_i64 (Fmt.str "crash %d: uncommitted undone" !k) 0L
        (Arena.read arena c.(1))
    end;
    incr k
  done

(* The deleted region is reusable only after the transaction's outcome is
   settled: its offset reappears from the (size=48, align=8) free list. *)
let delete_region_size = 48

let region_reusable alloc region =
  let o = Alloc.alloc alloc delete_region_size in
  let reused = o = region in
  Alloc.free alloc o delete_region_size;
  reused

let test_delete_deferred cfg () =
  let arena, alloc, tm = fresh cfg in
  let region = Alloc.alloc alloc delete_region_size in
  Arena.nt_write arena region 123L;
  let t = Tm.begin_txn tm in
  Tm.log_delete tm t ~addr:region ~size:delete_region_size;
  check_bool "not reusable before settling" false (region_reusable alloc region);
  Tm.commit tm t;
  (match cfg.Rewind.policy with
  | Tm.Force -> check_bool "freed at commit" true (region_reusable alloc region)
  | Tm.No_force ->
      check_bool "not freed before checkpoint" false
        (region_reusable alloc region);
      Tm.checkpoint tm;
      check_bool "freed at checkpoint" true (region_reusable alloc region))

let test_rollback_drops_delete cfg () =
  let _, alloc, tm = fresh cfg in
  let region = Alloc.alloc alloc delete_region_size in
  let t = Tm.begin_txn tm in
  Tm.log_delete tm t ~addr:region ~size:delete_region_size;
  Tm.rollback tm t;
  (match cfg.Rewind.policy with
  | Tm.No_force -> Tm.checkpoint tm
  | Tm.Force -> ());
  check_bool "rollback never frees" false (region_reusable alloc region)

(* ------------------------------------------------------------------ *)
(* Randomized workload vs model                                        *)
(* ------------------------------------------------------------------ *)

(* Execute a sequence of transactions with a crash at a random persistence
   event.  After recovery, every cell must hold its last-committed value —
   except that a transaction whose commit call was interrupted may
   legitimately be either committed or rolled back (its END record may or
   may not have persisted); both outcomes must be atomic. *)
let prop_crash_consistency (name, cfg) =
  QCheck.Test.make
    ~name:(Fmt.str "%s: crash consistency vs model" name)
    ~count:120
    QCheck.(pair (int_bound 1500) (list_of_size (Gen.int_range 1 12)
            (list_of_size (Gen.int_range 1 5) (pair (int_bound 9) (int_range 1 100)))))
    (fun (crash_after, txns) ->
      let arena, alloc, tm = fresh cfg in
      let c = cells alloc in
      let committed = Array.make 10 0L in  (* model *)
      let in_flight = Hashtbl.create 4 in  (* txn writes of interrupted commit *)
      Arena.arm_crash arena ~after:crash_after;
      (try
         List.iter
           (fun writes ->
             let txn = Tm.begin_txn tm in
             let mine = Hashtbl.create 4 in
             Hashtbl.reset in_flight;
             List.iter
               (fun (cell, v) ->
                 let v = Int64.of_int v in
                 Tm.write tm txn ~addr:c.(cell) ~value:v;
                 Hashtbl.replace mine cell v)
               writes;
             (* commit may crash mid-way: remember what it would change *)
             Hashtbl.iter (fun k v -> Hashtbl.replace in_flight k v) mine;
             Tm.commit tm txn;
             Hashtbl.reset in_flight;
             Hashtbl.iter (fun k v -> committed.(k) <- v) mine)
           txns;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let _tm2 = reattach cfg arena in
        (* Either the interrupted commit took effect entirely, or not at all. *)
        let matches model =
          Array.for_all
            (fun i -> Arena.read arena c.(i) = model i)
            (Array.init 10 (fun i -> i))
        in
        let as_committed i = committed.(i) in
        let as_flight i =
          match Hashtbl.find_opt in_flight i with
          | Some v -> v
          | None -> committed.(i)
        in
        matches as_committed || matches as_flight
      end
      else true)

let () =
  let tc = Alcotest.test_case in
  let per_config name speed f =
    List.map (fun (cn, cfg) -> tc (name ^ " [" ^ cn ^ "]") speed (f cfg)) all_configs
  in
  Alcotest.run "tm"
    [
      ("commit", per_config "commit visible" `Quick test_commit_visible);
      ("rollback", per_config "rollback restores" `Quick test_rollback_restores);
      ( "rollback-multi",
        per_config "multi-write same cell" `Quick
          test_rollback_multiple_writes_same_cell );
      ("interleaved", per_config "interleaved txns" `Quick test_interleaved_txns);
      ("atomically", per_config "atomically" `Quick test_atomically);
      ("clearing", per_config "force clears log" `Quick test_force_clears_log);
      ("checkpoint", per_config "checkpoint clears" `Quick test_checkpoint_clears);
      ( "crash-committed",
        per_config "committed survives" `Quick test_committed_survives_crash );
      ( "crash-uncommitted",
        per_config "uncommitted rolled back" `Quick test_uncommitted_rolled_back );
      ( "crash-mid-rollback",
        per_config "crash mid rollback" `Slow test_crash_mid_rollback );
      ( "crash-mid-commit",
        per_config "commit is atomic" `Slow test_crash_mid_commit_atomic );
      ( "double-crash",
        per_config "crash during recovery" `Quick test_double_crash_recovery );
      ( "checkpoint-crash",
        per_config "crash after checkpoint" `Quick test_crash_after_checkpoint );
      ( "checkpoint-mid-crash",
        per_config "crash mid checkpoint" `Slow test_crash_mid_checkpoint );
      ("delete", per_config "deferred delete" `Quick test_delete_deferred);
      ( "delete-rollback",
        per_config "rollback drops delete" `Quick test_rollback_drops_delete );
      ( "properties",
        List.map
          (fun nc -> QCheck_alcotest.to_alcotest (prop_crash_consistency nc))
          all_configs );
    ]
