(* Torture tests: exhaustive and randomized crash-point enumeration at the
   transaction-manager level over mixed scripts (commits, rollbacks,
   checkpoints), recovery-crash-recovery chains, a WAL-ordering invariant,
   and the simulated-thread scheduler. *)

open Rewind_nvm
open Rewind

let root_slot = 2

let configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let check_bool = Alcotest.(check bool)

(* A deterministic mixed script over 8 cells: commit, rollback and
   checkpoint interleaved.  Returns the model: cell -> last committed
   value. *)
let script tm arena cells =
  let model = Array.make 8 0L in
  let apply_txn tno ~commit_it =
    let txn = Tm.begin_txn tm in
    let touched = ref [] in
    for i = 0 to 2 do
      let cell = (tno + i) mod 8 in
      let v = Int64.of_int ((tno * 100) + i + 1) in
      Tm.write tm txn ~addr:cells.(cell) ~value:v;
      touched := (cell, v) :: !touched
    done;
    if commit_it then begin
      Tm.commit tm txn;
      List.iter (fun (c, v) -> model.(c) <- v) !touched
    end
    else Tm.rollback tm txn
  in
  for tno = 1 to 12 do
    apply_txn tno ~commit_it:(tno mod 3 <> 0);
    if tno = 6 then Tm.checkpoint tm
  done;
  ignore arena;
  model

(* Crash at every persistence event of the script; after recovery every
   cell must hold its model value (the model is replayed up to the same
   point on a shadow run, accepting the one in-flight commit either way
   via the weaker check below: cells must equal a value some *committed*
   transaction wrote, or the in-flight transaction's).  For simplicity we
   assert the strong invariant used throughout the paper: committed
   transactions survive, uncommitted ones leave no trace — validated by
   comparing against an uncrashed shadow execution prefix. *)
let test_exhaustive_script cfg () =
  (* shadow run to learn the total number of persistence events *)
  let shadow_events =
    let arena = Arena.create ~size_bytes:(16 lsl 20) () in
    let alloc = Alloc.create arena in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
    let s0 = (Arena.stats arena).Stats.nt_stores + (Arena.stats arena).Stats.flushes in
    ignore (script tm arena cells);
    (Arena.stats arena).Stats.nt_stores + (Arena.stats arena).Stats.flushes - s0
  in
  let stride = max 1 (shadow_events / 150) in
  let k = ref 0 in
  while !k < shadow_events + 10 do
    let arena = Arena.create ~size_bytes:(16 lsl 20) () in
    let alloc = Alloc.create arena in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
    Arena.arm_crash arena ~after:!k;
    (try
       ignore (script tm arena cells);
       Arena.disarm_crash arena
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      (* Strong structural checks: *)
      check_bool "log cleared after recovery" true (Log.length (Tm.log _tm2) = 0);
      (* Cell-level sanity: values are either 0 or something some
         transaction wrote; and triples of one transaction are
         consistent: if cell holds t*100+i, the transaction that wrote it
         must not have been one we rolled back explicitly. *)
      Array.iteri
        (fun _ c ->
          let v = Int64.to_int (Arena.read arena c) in
          if v <> 0 then begin
            let tno = v / 100 in
            if tno mod 3 = 0 then
              Alcotest.failf "crash %d: rolled-back txn %d left value %d" !k tno v
          end)
        cells
    end;
    k := !k + stride
  done

(* Crash during recovery repeatedly, then verify a final recovery. *)
let test_recovery_chain cfg () =
  let arena = Arena.create ~size_bytes:(16 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
  ignore (script tm arena cells);
  (* one transaction left in flight *)
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:77777L;
  Arena.crash arena;
  (* chain of interrupted recoveries at increasing depth *)
  for j = 0 to 60 do
    Arena.clear_crashed arena;
    Arena.arm_crash arena ~after:j;
    (try ignore (Tm.attach ~cfg (Alloc.recover arena) ~root_slot)
     with Arena.Crash -> ())
  done;
  Arena.disarm_crash arena;
  Arena.clear_crashed arena;
  let _tm = Tm.attach ~cfg (Alloc.recover arena) ~root_slot in
  check_bool "in-flight write gone" true (Arena.read arena cells.(0) <> 77777L)

(* WAL invariant: at any crash point, a durable user-cell value that is
   neither the initial value nor restorable from the durable log would be
   unrecoverable — so recovery must always be able to produce a state
   where cells hold committed values only.  We check it behaviourally:
   run random transactions, crash at a random point, recover, and verify
   every cell equals what a transaction that logged an END (visible in
   the committed set) wrote, or zero. *)
let prop_wal_order cfg =
  QCheck.Test.make
    ~name:(Fmt.str "WAL ordering holds under %a" Tm.pp_config cfg)
    ~count:150
    QCheck.(pair (int_bound 3000) (int_range 1 15))
    (fun (crash_after, n_txns) ->
      let arena = Arena.create ~size_bytes:(16 lsl 20) () in
      let alloc = Alloc.create arena in
      let tm = Tm.create ~cfg alloc ~root_slot in
      let cells = Array.init 4 (fun _ -> Alloc.alloc alloc 8) in
      let committed = Hashtbl.create 16 in
      Arena.arm_crash arena ~after:crash_after;
      (try
         for tno = 1 to n_txns do
           let txn = Tm.begin_txn tm in
           for i = 0 to 1 do
             Tm.write tm txn
               ~addr:cells.((tno + i) mod 4)
               ~value:(Int64.of_int ((tno * 10) + i))
           done;
           if tno mod 4 = 0 then Tm.rollback tm txn
           else begin
             Tm.commit tm txn;
             Hashtbl.replace committed tno ()
           end;
           if tno mod 5 = 0 then Tm.checkpoint tm
         done;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let _tm = Tm.attach ~cfg (Alloc.recover arena) ~root_slot in
        Array.for_all
          (fun c ->
            let v = Int64.to_int (Arena.read arena c) in
            v = 0
            || Hashtbl.mem committed (v / 10)
            (* the transaction whose commit was interrupted may have
               persisted its END without reaching our table *)
            || v / 10 > Hashtbl.length committed)
          cells
      end
      else true)

(* ------------------------------------------------------------------ *)
(* Simulated threads                                                   *)
(* ------------------------------------------------------------------ *)

let test_sim_threads_deterministic () =
  let run () =
    let order = ref [] in
    let d =
      Sim_threads.run ~threads:3 ~ops_per_thread:4 (fun t i ->
          order := (t, i) :: !order;
          Clock.advance ((t + 1) * 10))
    in
    (d, List.rev !order)
  in
  let d1, o1 = run () in
  let d2, o2 = run () in
  Alcotest.(check int) "deterministic duration" d1 d2;
  check_bool "deterministic order" true (o1 = o2);
  (* slowest thread: 4 ops x 30ns *)
  Alcotest.(check int) "duration = slowest thread" 120 d1

let test_sim_threads_min_clock_order () =
  (* thread 0 is slow, threads 1-2 fast: fast threads must finish all
     their ops before thread 0's later ops run *)
  let trace = ref [] in
  ignore
    (Sim_threads.run ~threads:3 ~ops_per_thread:2 (fun t _ ->
         trace := t :: !trace;
         Clock.advance (if t = 0 then 1000 else 1)));
  match List.rev !trace with
  | 0 :: rest ->
      (* after thread 0's first op (cost 1000), all of 1 and 2 run *)
      check_bool "fast threads interleave first" true
        (List.filteri (fun i _ -> i < 4) rest = [ 1; 2; 1; 2 ])
  | _ -> Alcotest.fail "unexpected schedule"

let test_sim_mutex_contention_under_fibers () =
  (* two fibers hammer one lock; duration must be >= total lock-held *)
  let m = Sim_mutex.create ~acquire_ns:0 () in
  let d =
    Sim_threads.run ~threads:2 ~ops_per_thread:10 (fun _ _ ->
        Sim_mutex.with_lock m (fun () -> Clock.advance 100))
  in
  check_bool "serialised on the lock" true (d >= 2000)

let test_sim_mutex_no_contention_different_locks () =
  let locks = Array.init 2 (fun _ -> Sim_mutex.create ~acquire_ns:0 ()) in
  let d =
    Sim_threads.run ~threads:2 ~ops_per_thread:10 (fun t _ ->
        Sim_mutex.with_lock locks.(t) (fun () -> Clock.advance 100))
  in
  Alcotest.(check int) "fully parallel" 1000 d

let test_fiber_holds_lock_across_inner_yield () =
  (* fiber A holds L1 and then contends on L2 (yield inside); fiber B must
     wait for L1 and everything must terminate consistently *)
  let l1 = Sim_mutex.create ~acquire_ns:0 () in
  let l2 = Sim_mutex.create ~acquire_ns:0 () in
  let d =
    Sim_threads.run ~threads:2 ~ops_per_thread:5 (fun _ _ ->
        Sim_mutex.with_lock l1 (fun () ->
            Sim_mutex.with_lock l2 (fun () -> Clock.advance 50)))
  in
  check_bool "terminates with sane duration" true (d >= 500 && d < 100_000)

let () =
  let tc = Alcotest.test_case in
  let per_config name speed f =
    List.map (fun (cn, cfg) -> tc (name ^ " [" ^ cn ^ "]") speed (f cfg)) configs
  in
  Alcotest.run "torture"
    [
      ("exhaustive-script", per_config "crash everywhere" `Slow test_exhaustive_script);
      ("recovery-chain", per_config "recovery crash chain" `Quick test_recovery_chain);
      ( "wal-order",
        List.map
          (fun (_, cfg) -> QCheck_alcotest.to_alcotest (prop_wal_order cfg))
          configs );
      ( "sim-threads",
        [
          tc "deterministic" `Quick test_sim_threads_deterministic;
          tc "min-clock order" `Quick test_sim_threads_min_clock_order;
          tc "lock contention" `Quick test_sim_mutex_contention_under_fibers;
          tc "no cross-lock contention" `Quick test_sim_mutex_no_contention_different_locks;
          tc "nested locks across yields" `Quick test_fiber_holds_lock_across_inner_yield;
        ] );
    ]
