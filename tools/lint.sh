#!/bin/sh
# Source lint: keep the simulation's instrumentation boundary tight.
#
# Two rules, both enforced by grep so they run anywhere dune does:
#
#   1. No raw Stdlib.Mutex / Stdlib.Atomic outside lib/nvm.  Every piece
#      of synchronization must go through Sim_mutex / Sim_atomic so that
#      (a) it is charged simulated time and (b) the race detector sees
#      the acquire/release/RMW edge.  A raw primitive is invisible to
#      both -- the happens-before checker would report false races (or
#      worse, the timing model would silently stop covering it).
#
#   2. No Clock.now outside lib/nvm and lib/benchlib.  Core code must
#      not make decisions from the simulated wall clock; timing belongs
#      to the memory/device models and the benchmark harness.
#
# Allowlist: one file per line, repo-relative.  Seeded with the current
# legitimate sites; add to it deliberately, with a comment here saying
# why the exception is sound.
set -eu

cd "$(dirname "$0")/.."

# Clock.now in tests is assertion, not policy: these suites pin the
# simulated-time cost model itself, so reading the clock is the point.
ALLOW_CLOCK='
test/test_log.ml
test/test_nvm.ml
test/test_baselines.ml
'

# No current exceptions: all synchronization goes through the wrappers.
ALLOW_SYNC='
'

allowed() {
    # $1 = allowlist, $2 = file
    printf '%s\n' "$1" | grep -qxF "$2"
}

fail=0

report() {
    # $1 = rule name, $2 = grep output (file:line:text)
    if [ -n "$2" ]; then
        echo "lint: $1" >&2
        printf '%s\n' "$2" | sed 's/^/  /' >&2
        fail=1
    fi
}

# --- rule 1: raw Mutex./Atomic. outside lib/nvm ------------------------
# Strip the wrapper tokens first, then re-match: a line mentioning
# Sim_atomic must not whitelist a raw Atomic. use sitting next to it on
# the same line (the old `grep -v` skipped the whole line).
sync_hits=$(
    grep -rn --include='*.ml' --include='*.mli' \
         -e '\bMutex\.' -e '\bAtomic\.' \
         lib bin bench examples test 2>/dev/null |
    grep -v '^lib/nvm/' |
    sed 's/Sim_mutex\.//g; s/Sim_atomic\.//g' |
    grep -e '\bMutex\.' -e '\bAtomic\.' |
    while IFS=: read -r file rest; do
        allowed "$ALLOW_SYNC" "$file" || printf '%s:%s\n' "$file" "$rest"
    done
)
report "raw Stdlib.Mutex/Stdlib.Atomic outside lib/nvm (use Sim_mutex / Sim_atomic so the clock and the race detector see it)" "$sync_hits"

# --- rule 2: Clock.now outside lib/nvm + lib/benchlib ------------------
clock_hits=$(
    grep -rn --include='*.ml' --include='*.mli' \
         -e '\bClock\.now\b' \
         lib bin bench examples test 2>/dev/null |
    grep -v '^lib/nvm/\|^lib/benchlib/' |
    while IFS=: read -r file rest; do
        allowed "$ALLOW_CLOCK" "$file" || printf '%s:%s\n' "$file" "$rest"
    done
)
report "Clock.now outside lib/nvm + lib/benchlib (core code must not branch on simulated time)" "$clock_hits"

if [ "$fail" -ne 0 ]; then
    echo "lint: failed" >&2
    exit 1
fi
echo "lint: ok"
