(* TPC-C new-order over REWIND (Section 5.3): runs the four configurations
   the paper's Figure 11 compares — non-recoverable NVM B+-trees, naive
   data structures over REWIND, the co-designed per-district layout, and
   the co-designed layout with a distributed (per-terminal) log — and
   prints their relative throughput, then demonstrates crash recovery of
   the transactional database.

     dune exec examples/tpcc_demo.exe                                      *)

open Rewind_nvm
open Rewind_tpcc

let () =
  Fmt.pr "TPC-C new-order, 10 terminals x 100 transactions (simulated time)@.@.";
  let configs =
    [
      Workload.Nvm_naive;
      Workload.Rewind_opt_dlog;
      Workload.Rewind_opt;
      Workload.Rewind_naive;
    ]
  in
  let results =
    List.map
      (fun config ->
        let r =
          Workload.run ~txns_per_terminal:100 ~params:Datagen.small
            ~arena_mb:256 ~config ()
        in
        (config, r))
      configs
  in
  let base =
    match results with (_, r) :: _ -> r.Workload.tpm | [] -> assert false
  in
  List.iter
    (fun (config, r) ->
      Fmt.pr "%-36s %8.0f ktpm   (%.2fx slowdown, %d committed, %d aborted)@."
        (Fmt.str "%a" Workload.pp_configuration config)
        (r.Workload.tpm /. 1000.)
        (base /. r.Workload.tpm) r.Workload.committed r.Workload.aborted)
    results;

  (* Crash in the middle of a transactional run, then recover and verify
     database consistency. *)
  Fmt.pr "@.crash + recovery check:@.";
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let db = Schema.create ~layout:Schema.Optimized Rewind_pds.Btree.Direct_nvm alloc in
  Datagen.load ~params:Datagen.small db 0;
  let tm = Rewind.Tm.create ~cfg:Workload.tm_config alloc ~root_slot:3 in
  let db = Schema.rebind db (Rewind_pds.Btree.Logged tm) in
  let rng = Rng.create 99 in
  Arena.arm_crash arena ~after:40_000;
  let done_txns = ref 0 in
  (try
     for _ = 1 to 500 do
       let rq = Neworder.gen_request rng ~items:Datagen.small.Datagen.items in
       ignore (Neworder.run_transactional db tm rq);
       incr done_txns
     done;
     Arena.disarm_crash arena
   with Arena.Crash -> Fmt.pr "  crashed after %d transactions@." !done_txns);
  let alloc = Alloc.recover arena in
  let _tm = Rewind.Tm.attach ~cfg:Workload.tm_config alloc ~root_slot:3 in
  Fmt.pr "  recovered; database consistent: %b@." (Workload.check_consistency db);
  assert (Workload.check_consistency db)
