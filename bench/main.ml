(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) from the simulated-NVM cost model, plus
   the ablation benches from DESIGN.md and a Bechamel wall-clock
   micro-benchmark section for the core operations.

   Usage:
     bench/main.exe                 run everything at the default scale
     bench/main.exe --quick         smaller parameters (CI-sized)
     bench/main.exe fig7-left fig9  run selected figures only
     bench/main.exe micro           run only the Bechamel micro-benches

   Table 1 of the paper is qualitative (pros/cons of FS vs DBMS vs
   library); it has no measurable series and is discussed in
   EXPERIMENTS.md. *)

open Rewind_benchlib

(* Optional CSV sink: `--csv DIR` writes <figure>.csv next to the printed
   series. *)
let csv_dir = ref None

let emit series =
  Series.print series;
  match !csv_dir with
  | Some dir -> Fmt.pr "# csv: %s@." (Series.to_csv series dir)
  | None -> ()

let figures quick =
  let s v q = if quick then q else v in
  [
    ("fig3-left", fun () -> emit (Figures.fig3_left ~n_ops:(s 10_000 2_000) ()));
    ("fig3-right", fun () -> emit (Figures.fig3_right ~target_updates:(s 60 20) ()));
    ("fig4-left", fun () -> emit (Figures.fig4_left ~target_updates:(s 60 20) ()));
    ("fig4-right", fun () -> emit (Figures.fig4_right ~target_updates:(s 60 20) ()));
    ( "fig5",
      fun () ->
        emit (Figures.fig5 ~n_txns:(s 400 350) ~updates_each:(s 10 4) ()) );
    ("fig6", fun () -> emit (Figures.fig6 ~n_records:(s 120_000 30_000) ()));
    ( "fig7-left",
      fun () ->
        emit
          (Figures.fig7_left ~n_records:(s 10_000 2_000) ~n_ops:(s 20_000 4_000) ()) );
    ( "fig7-right",
      fun () ->
        emit
          (Figures.fig7_right ~n_records:(s 10_000 2_000) ~n_ops:(s 20_000 4_000) ()) );
    ("fig8-left", fun () -> emit (Figures.fig8_left ~n_records:(s 10_000 2_000) ()));
    ("fig8-right", fun () -> emit (Figures.fig8_right ~n_records:(s 10_000 2_000) ()));
    ( "fig9",
      fun () ->
        emit
          (Figures.fig9 ~ops_per_thread:(s 10_000 2_000) ~n_records:(s 4_000 1_000) ()) );
    ( "fig10",
      fun () ->
        emit (Figures.fig10 ~n_records:(s 5_000 1_000) ~n_ops:(s 10_000 2_000) ()) );
    ( "fig11",
      fun () ->
        let bars = Figures.fig11 ~txns_per_terminal:(s 300 60) () in
        Series.print_bars ~id:"fig11" ~title:"TPC-C new-order throughput"
          ~ylabel:"thousand transactions per simulated minute" bars;
        match !csv_dir with
        | Some dir ->
            Fmt.pr "# csv: %s@."
              (Series.bars_to_csv ~id:"fig11" ~ylabel:"ktpm" bars dir)
        | None -> () );
    ("ablation-bucket", fun () -> emit (Figures.ablation_bucket_size ()));
    ("ablation-group", fun () -> emit (Figures.ablation_group ()));
    ("ablation-policy", fun () -> emit (Figures.ablation_policy ~n_txns:(s 2_000 500) ()));
    ("ablation-lockfree", fun () -> emit (Figures.ablation_lockfree ()));
    ( "append",
      fun () ->
        let results = Append_bench.run ~n_ops:(s 20_000 4_000) () in
        Fmt.pr "@.== append: inline vs full-record log appends ==@.";
        List.iter (fun r -> Fmt.pr "%a@." Append_bench.pp_result r) results;
        let path = "BENCH_append.json" in
        let oc = open_out path in
        output_string oc (Append_bench.to_json results);
        close_out oc;
        Fmt.pr "# json: %s@." path );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                                 *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let mk_env variant =
    let arena = Rewind_nvm.Arena.create ~size_bytes:(512 lsl 20) () in
    let alloc = Rewind_nvm.Alloc.create arena in
    let cfg = { Rewind.Tm.default_config with variant } in
    let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
    (alloc, tm)
  in
  let tm_write ?(inline = true) variant =
    let alloc, tm = mk_env variant in
    Rewind.Log.set_inline (Rewind.Tm.log tm) inline;
    let cell = Rewind_nvm.Alloc.alloc alloc 8 in
    let txn = ref (Rewind.Tm.begin_txn tm) in
    let n = ref 0 in
    Staged.stage (fun () ->
        Rewind.Tm.write tm !txn ~addr:cell ~value:(Int64.of_int !n);
        incr n;
        (* bound transaction length so the log does not explode *)
        if !n mod 1024 = 0 then begin
          Rewind.Tm.commit tm !txn;
          Rewind.Tm.checkpoint tm;
          txn := Rewind.Tm.begin_txn tm
        end)
  in
  (* a whole short transaction per run: begin, 8 word writes, commit *)
  let tm_commit ?(inline = true) variant =
    let alloc, tm = mk_env variant in
    Rewind.Log.set_inline (Rewind.Tm.log tm) inline;
    let cells = Array.init 8 (fun _ -> Rewind_nvm.Alloc.alloc alloc 8) in
    let n = ref 0 in
    Staged.stage (fun () ->
        let txn = Rewind.Tm.begin_txn tm in
        Array.iter
          (fun c ->
            incr n;
            Rewind.Tm.write tm txn ~addr:c ~value:(Int64.of_int (!n land 0xFFF)))
          cells;
        Rewind.Tm.commit tm txn;
        if !n mod 8192 = 0 then Rewind.Tm.checkpoint tm)
  in
  let adll_append =
    let arena = Rewind_nvm.Arena.create ~size_bytes:(512 lsl 20) () in
    let alloc = Rewind_nvm.Alloc.create arena in
    let l = Rewind.Adll.create alloc in
    Staged.stage (fun () -> ignore (Rewind.Adll.append l 42))
  in
  let btree_insert =
    let arena = Rewind_nvm.Arena.create ~size_bytes:(512 lsl 20) () in
    let alloc = Rewind_nvm.Alloc.create arena in
    let bt = Rewind_pds.Btree.create Rewind_pds.Btree.Dram alloc in
    let n = ref 0 in
    Staged.stage (fun () ->
        incr n;
        Rewind_pds.Btree.insert bt 0 (Int64.of_int !n) 1L)
  in
  let tests =
    Test.make_grouped ~name:"core"
      [
        Test.make ~name:"tm-write-simple" (tm_write Rewind.Log.Simple);
        Test.make ~name:"tm-write-optimized" (tm_write Rewind.Log.Optimized);
        Test.make ~name:"tm-write-optimized-full"
          (tm_write ~inline:false Rewind.Log.Optimized);
        Test.make ~name:"tm-write-batch8" (tm_write (Rewind.Log.Batch 8));
        Test.make ~name:"tm-write-batch8-full"
          (tm_write ~inline:false (Rewind.Log.Batch 8));
        Test.make ~name:"tm-commit8-optimized" (tm_commit Rewind.Log.Optimized);
        Test.make ~name:"tm-commit8-optimized-full"
          (tm_commit ~inline:false Rewind.Log.Optimized);
        Test.make ~name:"adll-append" adll_append;
        Test.make ~name:"btree-insert-dram" btree_insert;
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  Fmt.pr "@.== micro: Bechamel wall-clock micro-benchmarks ==@.";
  let results = benchmark () in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-28s %10.1f ns/op (wall)@." name est
          | Some _ | None -> Fmt.pr "%-28s (no estimate)@." name)
        tbl)
    results;
  Fmt.pr "@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let rec strip_csv acc = function
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        strip_csv acc rest
    | x :: rest -> strip_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_csv [] args in
  let names = List.filter (fun a -> a <> "--quick") args in
  let all = figures quick in
  let to_run =
    match names with [] -> List.map fst all @ [ "micro" ] | ns -> ns
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      if name = "micro" then micro ()
      else
        match List.assoc_opt name all with
        | Some f ->
            let s = Unix.gettimeofday () in
            f ();
            Fmt.pr "# %s completed in %.1fs wall@." name (Unix.gettimeofday () -. s);
            Gc.compact ()
        | None ->
            Fmt.epr "unknown figure %S; available: %s micro@." name
              (String.concat " " (List.map fst all)))
    to_run;
  Fmt.pr "@.# total wall time: %.1fs@." (Unix.gettimeofday () -. t0)
